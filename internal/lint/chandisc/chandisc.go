// Package chandisc enforces channel ownership discipline in library
// code — the rules whose violations surface as panics ("send on closed
// channel") or permanently blocked goroutines rather than wrong
// answers:
//
//  1. Only the owner closes. close() on a bidirectional channel
//     parameter is flagged: the function did not make the channel, so
//     it cannot know there are no senders left. A send-only parameter
//     (chan<- T) is exempt — declaring the direction is how Go spells
//     the producer-owns-the-close idiom.
//  2. A plain send on a channel this package also closes, from a
//     different function than the close, is flagged: nothing orders the
//     send before the close, and losing that race panics.
//  3. A plain send on a provably unbuffered channel (a local made with
//     make(chan T) and never reassigned) outside a select is flagged:
//     if the receiver has left — returned early, failed, been cancelled
//     — the sender blocks forever. Put the send in a select with a
//     ctx.Done()/stop case, or buffer the channel so the handoff cannot
//     wedge.
//
// Package main and _test.go files are exempt, matching the other
// concurrency-contract analyzers.
package chandisc

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the chandisc pass.
var Analyzer = &analysis.Analyzer{
	Name: "chandisc",
	Doc:  "channel ownership: no close of bidirectional channel params, no sends racing a close, no unbuffered sends outside select",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		if strings.HasSuffix(path.Base(pass.Fset.Position(f.Pos()).Filename), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	// First pass: which channel objects does this package close, and
	// where? Field objects are per-type, so a close of f.done in one
	// function covers every instance — exactly the "possibly closed"
	// class rule 2 needs.
	closedBy := map[types.Object]*ast.FuncDecl{}
	for _, fd := range fns {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "close" || pass.TypesInfo.Uses[id] != nil && pass.TypesInfo.Uses[id].Pkg() != nil {
				return true
			}
			if obj := chanObj(pass, call.Args[0]); obj != nil {
				if _, seen := closedBy[obj]; !seen {
					closedBy[obj] = fd
				}
			}
			return true
		})
	}
	for _, fd := range fns {
		checkFunc(pass, fd, closedBy)
	}
	return nil
}

// chanObj resolves a channel expression to a stable object: a variable
// ident or a struct-field selection. Anything else (map index, call
// result) has no cross-function identity and returns nil.
func chanObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := analysis.ObjectOf(pass.TypesInfo, e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Obj() != nil {
			return sel.Obj()
		}
	}
	return nil
}

// checkFunc applies the three rules inside one top-level function.
// Function literals nested in fd count as the same owner scope: a
// goroutine closed over its parent's channel is the classic
// worker/collector pair, not a cross-owner hazard.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, closedBy map[types.Object]*ast.FuncDecl) {
	params := map[types.Object]bool{}
	collectParams(pass, fd.Type, params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			collectParams(pass, fl.Type, params)
		}
		return true
	})
	unbuffered := unbufferedLocals(pass, fd)

	// selectComms records the send statements that are a select's comm
	// clause — those are cancellable and exempt from rules 2 and 3.
	selectComms := map[ast.Stmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					selectComms[cc.Comm] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Rule 1: close of a bidirectional channel parameter.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				obj := chanObj(pass, n.Args[0])
				if obj == nil || !params[obj] {
					return true
				}
				if ch, ok := obj.Type().Underlying().(*types.Chan); ok && ch.Dir() == types.SendRecv {
					pass.Reportf(n.Pos(),
						"close of channel parameter %s: this function did not create the channel and cannot know no senders remain; close where the channel is made, or take chan<- %s to document producer ownership",
						obj.Name(), ch.Elem())
				}
			}
		case *ast.SendStmt:
			if selectComms[n] {
				return true
			}
			obj := chanObj(pass, n.Chan)
			if obj == nil {
				return true
			}
			// Rule 2: send racing a close in another function.
			if closer, ok := closedBy[obj]; ok && closer != fd {
				pass.Reportf(n.Pos(),
					"send on %s, which %s closes; nothing orders this send before that close, and losing the race panics — make the closer the only sender or guard both with the owner's lock",
					obj.Name(), closer.Name.Name)
				return true
			}
			// Rule 3: unbuffered send outside a cancellable select.
			if unbuffered[obj] {
				pass.Reportf(n.Pos(),
					"unbuffered send on %s outside a select: if the receiver is gone this goroutine blocks forever; add a select with a ctx.Done()/stop case or buffer the channel",
					obj.Name())
			}
		}
		return true
	})
}

func collectParams(pass *analysis.Pass, ft *ast.FuncType, out map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
}

// unbufferedLocals finds variables in fd provably bound to an
// unbuffered channel: every binding is make(chan T) with no capacity
// (or a constant zero capacity), and nothing else is ever assigned.
func unbufferedLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	known := map[types.Object]bool{} // true = unbuffered so far
	poison := func(obj types.Object) {
		if obj != nil {
			known[obj] = false
		}
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		obj := chanObj(pass, lhs)
		if obj == nil {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		if v, ok := known[obj]; ok && !v {
			return // already poisoned
		}
		if rhs != nil && isUnbufferedMake(pass, rhs) {
			known[obj] = true
		} else {
			poison(obj)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					bind(l, nil) // multi-value: origin unknown
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						bind(name, rhs)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				poison(chanObj(pass, n.X)) // address escapes; rebinding untrackable
			}
		}
		return true
	})
	out := map[types.Object]bool{}
	for obj, ok := range known {
		if ok {
			out[obj] = true
		}
	}
	return out
}

// isUnbufferedMake reports whether e is make(chan T) or
// make(chan T, 0).
func isUnbufferedMake(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok {
		return false
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	if len(call.Args) == 2 {
		if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return true
		}
	}
	return false
}
