package chanpkg

func consume(v int) {}

// Closing a bidirectional parameter: the function did not make the
// channel, so it cannot know no senders remain.
func CloseParam(ch chan int) {
	close(ch) // want `close of channel parameter`
}

// A send-only parameter documents the producer-close idiom.
func CloseSendOnly(ch chan<- int) {
	for i := 0; i < 3; i++ {
		ch <- i
	}
	close(ch)
}

// The owner made it, the owner closes it.
func OwnerClose() {
	ch := make(chan int, 4)
	ch <- 1
	close(ch)
}

type stream struct {
	out chan int
}

// Close closes s.out in one function...
func (s *stream) Close() {
	close(s.out)
}

// ...so a send from any other function races it.
func (s *stream) Emit(v int) {
	s.out <- v // want `send on out, which Close closes`
}

// An unbuffered handoff outside a select wedges forever if the receiver
// is gone.
func UnbufferedSend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `unbuffered send on ch outside a select`
	}()
	consume(<-ch)
}

// The same handoff inside a cancellable select is the sanctioned shape.
func SelectSend(stop chan struct{}) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-stop:
		}
	}()
	select {
	case v := <-ch:
		consume(v)
	case <-stop:
	}
}

// A buffered result slot never blocks its sender.
func BufferedSend() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	consume(<-ch)
}

// Rebinding to a buffered make poisons the unbuffered proof.
func Rebound() {
	ch := make(chan int)
	ch = make(chan int, 8)
	ch <- 1
	consume(<-ch)
}

// An explicit zero capacity is still unbuffered.
func ZeroCap() {
	ch := make(chan int, 0)
	go func() {
		ch <- 1 // want `unbuffered send on ch outside a select`
	}()
	consume(<-ch)
}

// A reasoned allow acknowledges a handoff whose receiver provably waits.
func Allowed() {
	ch := make(chan int)
	go func() {
		ch <- 1 //lint:allow chandisc the spawner blocks on the receive right below, so the rendezvous cannot be abandoned
	}()
	consume(<-ch)
}
