package shpkg

import "errors"

func check() (error, bool) { return nil, true }

func shadowed() error {
	err := errors.New("outer")
	if true {
		err := errors.New("inner") // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}

func retypedOK() error {
	err := errors.New("outer")
	if true {
		err := "a string, deliberately" // different type: not shadowing
		_ = err
	}
	return err
}

func notUsedAfterOK() {
	err := errors.New("outer")
	_ = err
	if true {
		err := errors.New("inner") // outer is dead here: fine
		_ = err
	}
}

func ifScopeShadow() error {
	err := errors.New("outer")
	if err, ok := check(); ok { // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}
