package nilpkg

type node struct {
	next *node
	val  int
}

func deref(n *node) int {
	if n == nil {
		return n.val // want `n is nil on this path; this selector dereferences it`
	}
	return n.val
}

func derefFlipped(n *node) int {
	if nil == n {
		return n.val // want `n is nil on this path; this selector dereferences it`
	}
	return n.val
}

func star(p *int) int {
	if p == nil {
		return *p // want `p is nil on this path; this dereference crashes`
	}
	return *p
}

func sliceIdx(xs []int) int {
	if xs == nil {
		return xs[0] // want `xs is nil on this path; this index panics`
	}
	return xs[0]
}

func mapReadOK(m map[string]int) int {
	if m == nil {
		return m["k"] // reading a nil map is defined behavior
	}
	return m["k"]
}

func reassignedOK(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

func guardedOK(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}
