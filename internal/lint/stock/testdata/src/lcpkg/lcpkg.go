package lcpkg

import "context"

func discarded(ctx context.Context) context.Context {
	ctx, _ = context.WithCancel(ctx) // want `cancel function returned by context\.WithCancel is discarded`
	return ctx
}

func blanked(ctx context.Context) context.Context {
	ctx2, cancel := context.WithCancel(ctx) // want `cancel function returned by context\.WithCancel is never called`
	_ = cancel
	return ctx2
}

func deferred(ctx context.Context) {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = ctx2
}

func handedOff(ctx context.Context, sink func(func())) {
	ctx2, cancel := context.WithTimeout(ctx, 0)
	sink(cancel)
	_ = ctx2
}

func stored(ctx context.Context) func() {
	_, cancel := context.WithCancel(ctx)
	return cancel
}
