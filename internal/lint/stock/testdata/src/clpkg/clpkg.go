package clpkg

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want `parameter g copies a lock: mu contains sync\.Mutex`
	return g.n
}

func (g guarded) read() int { // want `receiver copies a lock: mu contains sync\.Mutex`
	return g.n
}

func byPtr(g *guarded) int {
	return g.n
}

func plain(n int, names []string) int {
	return n + len(names)
}

func muParam(mu sync.Mutex) { // want `parameter mu copies a lock: sync\.Mutex`
	_ = mu
}

func wgParam(wg sync.WaitGroup) { // want `parameter wg copies a lock: sync\.WaitGroup`
	_ = wg
}

func wgPtrOK(wg *sync.WaitGroup) {
	wg.Wait()
}
