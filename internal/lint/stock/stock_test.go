package stock

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestLostCancel(t *testing.T) {
	linttest.Run(t, "testdata/src", "lcpkg", LostCancel)
}

func TestCopyLocks(t *testing.T) {
	linttest.Run(t, "testdata/src", "clpkg", CopyLocks)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata/src", "shpkg", Shadow)
}

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata/src", "nilpkg", Nilness)
}
