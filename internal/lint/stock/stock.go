// Package stock provides lightweight reimplementations of the stock
// go/analysis passes the multichecker would normally pull in from
// golang.org/x/tools — nilness, lostcancel, copylocks and shadow. The
// container has no module proxy, so these cover the highest-value
// subset of each upstream pass with the same diagnostic vocabulary:
//
//   - lostcancel: a context cancel function that is discarded or never
//     called leaks the context until its parent ends.
//   - copylocks: passing a sync.Mutex/RWMutex/WaitGroup/Once (or a
//     struct containing one) by value forks the lock state.
//   - shadow: an inner := redeclaring an outer variable of identical
//     type, where the outer one is still used afterwards — the classic
//     "err eaten by an if-scope" bug.
//   - nilness: dereferencing a variable inside the branch that just
//     proved it nil.
//
// Each is deliberately conservative: fewer checks than upstream, no
// false positives on this repo's idioms.
package stock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ---------------------------------------------------------------- lostcancel

// LostCancel flags context cancel functions that are discarded with _
// or never used.
var LostCancel = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  "flag discarded or unused context cancel functions",
	Run:  runLostCancel,
}

var cancelReturning = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
}

func runLostCancel(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCancels(pass, fd.Body)
		}
	}
	return nil
}

func checkCancels(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelReturning[fn.Name()] {
			return true
		}
		id, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(),
				"the cancel function returned by context.%s is discarded; a lost cancel leaks the context until its parent is canceled", fn.Name())
			return true
		}
		obj := analysis.ObjectOf(pass.TypesInfo, id)
		if obj == nil {
			return true
		}
		if !calledOrEscapes(pass, body, obj) {
			pass.Reportf(id.Pos(),
				"the cancel function returned by context.%s is never called; call it (usually via defer) or hand it to something that will", fn.Name())
		}
		return true
	})
}

// calledOrEscapes reports whether obj is invoked, passed to another
// function, stored, or returned anywhere in body. A cancel func whose
// only "use" is `_ = cancel` satisfies the compiler but still leaks.
func calledOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if usesObj(n.Fun) {
				found = true // cancel() or defer cancel()
			}
			for _, arg := range n.Args {
				if usesObj(arg) {
					found = true // handed to something that may call it
				}
			}
		case *ast.AssignStmt:
			allBlank := true
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if !allBlank {
				for _, rhs := range n.Rhs {
					if usesObj(rhs) {
						found = true // stored somewhere real
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesObj(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if usesObj(el) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------- copylocks

// CopyLocks flags function parameters and receivers that copy a lock.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value transfer of types containing sync locks",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				if name := lockPath(recv.Type()); name != "" {
					pass.Reportf(fd.Recv.Pos(),
						"receiver copies a lock: %s; use a pointer receiver", name)
				}
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if name := lockPath(p.Type()); name != "" {
					pass.Reportf(p.Pos(),
						"parameter %s copies a lock: %s; pass a pointer", p.Name(), name)
				}
			}
		}
	}
	return nil
}

// lockPath returns a human-readable description of the lock a by-value
// type would copy, or "" if it carries none. Pointers, interfaces,
// slices and maps share state rather than copying it.
func lockPath(t types.Type) string {
	return lockPathRec(t, map[types.Type]bool{})
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if inner := lockPathRec(f.Type(), seen); inner != "" {
				return f.Name() + " contains " + inner
			}
		}
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return lockPathRec(arr.Elem(), seen)
	}
	return ""
}

// ---------------------------------------------------------------- shadow

// Shadow flags an inner := that redeclares an outer variable of
// identical type when the outer variable is still used after the inner
// scope ends.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag shadowed variables whose outer declaration is used afterwards",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				checkShadowDecl(pass, as, id)
			}
			return true
		})
	}
	return nil
}

// checkShadowDecl flags `x := ...` when it shadows an outer x of the
// same type that is still used after the inner scope ends. Two
// deliberate idioms are exempt: closure parameters (only := sites are
// considered at all, so subtest func(t *testing.T) never fires) and
// per-iteration copies whose right-hand side reads the outer variable
// (`x := x`).
func checkShadowDecl(pass *analysis.Pass, as *ast.AssignStmt, id *ast.Ident) {
	v, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
		return
	}
	inner := v.Parent()
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok || outer == v || outer.Parent() == pass.Pkg.Scope() {
		return // shadowing a package-level variable is out of scope here
	}
	if !types.Identical(outer.Type(), v.Type()) {
		return // deliberate re-typing, vet's shadow skips these too
	}
	for _, rhs := range as.Rhs {
		readsOuter := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if use, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[use] == outer {
				readsOuter = true
			}
			return !readsOuter
		})
		if readsOuter {
			return // x := x style copy: shadowing is the point
		}
	}
	if !usedAfter(pass, outer, inner.End()) {
		return
	}
	pass.Reportf(id.Pos(),
		"declaration of %q shadows declaration at line %d; the outer variable is used after this scope ends",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}

func usedAfter(pass *analysis.Pass, obj types.Object, after token.Pos) bool {
	for id, used := range pass.TypesInfo.Uses {
		if used == obj && id.Pos() > after {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------- nilness

// Nilness flags dereferences of a variable inside the branch that just
// proved it nil.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereference of a variable inside its x == nil branch",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilCheckedObj(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			checkNilDeref(pass, ifs.Body, obj)
			return true
		})
	}
	return nil
}

// nilCheckedObj returns the object proven nil by cond (`x == nil` /
// `nil == x`), or nil.
func nilCheckedObj(pass *analysis.Pass, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		// fallthrough with x
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	// Only pointer-shaped things crash on deref.
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return obj
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func checkNilDeref(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				return true
			}
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this path; this selector dereferences it", obj.Name())
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this path; this dereference crashes", obj.Name())
			}
		case *ast.IndexExpr:
			// Indexing a nil map reads fine; indexing a nil slice panics.
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				return true
			}
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this path; this index panics", obj.Name())
			}
		}
		return true
	})
}
