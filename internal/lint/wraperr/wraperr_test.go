package wraperr

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestWrapErr(t *testing.T) {
	linttest.Run(t, "testdata/src", "errpkg", Analyzer)
}
