// Package wraperr enforces the typed-error contract around the wire
// layer: RemoteError / NetError / CircuitOpenError are matched
// structurally, never textually, and always survive wrapping.
//
//   - error text is not an API: err.Error() compared with == / != or
//     fed to the strings.Contains family is flagged — renaming an
//     address or reformatting a message must not change behavior.
//   - direct == / != between two errors is flagged (nil checks exempt):
//     wrapping breaks identity, errors.Is does not.
//   - type assertions and type switches on the wire error types are
//     flagged: a wrapped *NetError fails x.(*NetError) but matches
//     errors.As.
//   - fmt.Errorf that swallows a concrete wire error without %w is
//     flagged: downstream errors.As/Is stop working the moment the
//     chain is cut.
//
// Unlike most passes this one covers _test.go files too — string-
// matching an error message in a test is exactly where the brittleness
// lives.
package wraperr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the wraperr pass.
var Analyzer = &analysis.Analyzer{
	Name: "wraperr",
	Doc:  "require structural error matching (errors.Is/As, %w) for wire errors",
	Run:  run,
}

// wireErrorTypes are the typed errors the wire package exports.
var wireErrorTypes = []string{"RemoteError", "NetError", "CircuitOpenError"}

// stringMatchFns are the strings functions that turn error text into
// control flow.
var stringMatchFns = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkStringsCall(pass, n)
				checkErrorf(pass, n)
			case *ast.TypeAssertExpr:
				checkAssert(pass, n.Type, n.Pos())
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func errorIface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// isErrorDotError reports whether e is a call of the Error() string
// method on something implementing error.
func isErrorDotError(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && types.Implements(tv.Type, errorIface())
}

func isErrorTyped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Type != nil && types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorDotError(pass, be.X) || isErrorDotError(pass, be.Y) {
		pass.Reportf(be.Pos(),
			"error text compared with %s; error messages are not an API — match with errors.Is or errors.As", be.Op)
		return
	}
	if isErrorTyped(pass, be.X) && isErrorTyped(pass, be.Y) {
		pass.Reportf(be.Pos(),
			"errors compared with %s; wrapping breaks identity — use errors.Is(err, target)", be.Op)
	}
}

func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringMatchFns[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorDotError(pass, arg) {
			pass.Reportf(call.Pos(),
				"error text fed to strings.%s; error messages are not an API — match with errors.Is or errors.As", fn.Name())
			return
		}
	}
}

// isWireError reports whether t (pointer-deref) is one of the wire
// package's typed errors.
func isWireError(t types.Type) bool {
	for _, name := range wireErrorTypes {
		if analysis.NamedFromPkg(t, "wire", name) {
			return true
		}
	}
	return false
}

func checkAssert(pass *analysis.Pass, typ ast.Expr, pos token.Pos) {
	if typ == nil {
		return // x.(type) inside a type switch; handled per-case
	}
	tv, ok := pass.TypesInfo.Types[typ]
	if ok && isWireError(tv.Type) {
		pass.Reportf(pos,
			"type assertion on %s; a wrapped wire error fails the assertion — use errors.As", types.ExprString(typ))
	}
}

func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	for _, c := range ts.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			checkAssert(pass, expr, expr.Pos())
		}
	}
}

// checkErrorf flags fmt.Errorf calls that absorb a concrete wire error
// without %w, cutting the errors.As chain.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsPkgCall(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	ftv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(ftv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isWireError(tv.Type) {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf absorbs a typed wire error without %%w; wrap it so errors.As keeps working")
			return
		}
	}
}
