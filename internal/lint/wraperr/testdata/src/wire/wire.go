// Package wire is a fixture stand-in exporting the repo's typed
// errors; the analyzer matches on package NAME.
package wire

import "errors"

type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

type NetError struct {
	Addr string
	Sent bool
	Err  error
}

func (e *NetError) Error() string { return "net: " + e.Addr }
func (e *NetError) Unwrap() error { return e.Err }

type CircuitOpenError struct{ Addr string }

func (e *CircuitOpenError) Error() string { return "open: " + e.Addr }

var ErrCircuitOpen = errors.New("wire: circuit breaker open")
