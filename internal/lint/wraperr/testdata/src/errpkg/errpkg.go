package errpkg

import (
	"errors"
	"fmt"
	"strings"

	"wire"
)

func textEq(err error) bool {
	return err.Error() == "wire: circuit breaker open" // want `error text compared with ==`
}

func textNeq(err error) bool {
	return "boom" != err.Error() // want `error text compared with !=`
}

func textContains(err error) bool {
	return strings.Contains(err.Error(), "refused") // want `error text fed to strings\.Contains`
}

func textPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "wire:") // want `error text fed to strings\.HasPrefix`
}

func identity(err error) bool {
	return err == wire.ErrCircuitOpen // want `errors compared with ==`
}

func nilCheckOK(err error) bool {
	return err != nil // nil comparisons are the one legitimate identity check
}

func isOK(err error) bool {
	return errors.Is(err, wire.ErrCircuitOpen)
}

func assertBad(err error) bool {
	_, ok := err.(*wire.NetError) // want `type assertion on \*wire\.NetError`
	return ok
}

func switchBad(err error) string {
	switch err.(type) {
	case *wire.RemoteError: // want `type assertion on \*wire\.RemoteError`
		return "remote"
	case *wire.CircuitOpenError: // want `type assertion on \*wire\.CircuitOpenError`
		return "open"
	}
	return "other"
}

func switchOtherTypesOK(v interface{}) string {
	switch v.(type) {
	case string:
		return "s"
	case int:
		return "i"
	}
	return "?"
}

func asOK(err error) bool {
	var ne *wire.NetError
	return errors.As(err, &ne)
}

func wrapBad(ne *wire.NetError) error {
	return fmt.Errorf("lookup failed: %v", ne) // want `fmt\.Errorf absorbs a typed wire error without %w`
}

func wrapOK(ne *wire.NetError) error {
	return fmt.Errorf("lookup failed: %w", ne)
}

func wrapPlainOK(err error) error {
	// A plain error under %v is out of this pass's scope; only the
	// typed wire errors carry structure worth preserving.
	return fmt.Errorf("lookup failed: %v", err)
}

func allowedAssert(err error) bool {
	_, ok := err.(*wire.NetError) //lint:allow wraperr err comes straight off the dialer, never wrapped
	return ok
}
