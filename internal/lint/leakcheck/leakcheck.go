// Package leakcheck is the runtime half of the concurrency-contract
// suite: where goroutinelife proves statically that every goroutine has
// an owner, leakcheck verifies at `go test` time that the owners
// actually fire. It has two gates and zero dependencies beyond the
// standard library:
//
//   - Main wraps a package's TestMain: it snapshots the running
//     goroutines before the tests, runs them, and fails the binary if
//     any goroutine spawned during the run is still alive once a grace
//     window (LEAKCHECK_GRACE, default 2s) has passed — with the
//     straggler's full stack, so the leak points at its spawn site.
//   - Watchdog arms a per-test deadlock timer: if the test has not
//     finished when the timer fires, it dumps every goroutine stack and
//     kills the process, turning a silent `go test` hang (the package
//     timeout is 10 minutes) into an immediate, attributed failure.
//
// Both gates read goroutine state from runtime.Stack(all=true), which
// reports user goroutines only — GC workers and other system goroutines
// never appear. Goroutines belonging to the testing framework itself
// (pending parallel subtests, signal handling) are filtered as benign.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultGrace is how long Main waits for goroutines to drain after the
// tests pass, unless LEAKCHECK_GRACE overrides it. Shutdown is
// asynchronous by design (Close returns once owners are signalled, not
// once every stack has unwound), so the gate polls instead of
// snapshotting once.
const DefaultGrace = 2 * time.Second

// DefaultWatchdog is Watchdog's timer when the caller passes 0.
const DefaultWatchdog = 2 * time.Minute

// Main runs m's tests between a goroutine baseline and a leak check,
// exiting non-zero if the tests fail or leak. Install it as the
// package's TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	baseline := map[string]bool{}
	for id := range snapshot() {
		baseline[id] = true
	}
	code := m.Run()
	if code == 0 {
		if left := wait(baseline, grace()); len(left) > 0 {
			fmt.Fprintf(os.Stderr,
				"leakcheck: %d goroutine(s) leaked by this package's tests (still running %v after the last test):\n\n%s\n",
				len(left), grace(), strings.Join(left, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Watchdog fails the whole test binary with a full goroutine dump if t
// is still running after d (0 = DefaultWatchdog). Arm it at the top of
// tests that drive real concurrency:
//
//	leakcheck.Watchdog(t, 30*time.Second)
//
// A deadlocked test cannot fail itself — every path to t.Fatal is
// blocked — so the watchdog has to end the process, not the test.
func Watchdog(t testing.TB, d time.Duration) {
	if d <= 0 {
		d = DefaultWatchdog
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	name := t.Name()
	go func() {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			buf := make([]byte, 1<<22)
			n := runtime.Stack(buf, true)
			fmt.Fprintf(os.Stderr,
				"leakcheck: watchdog: %s still running after %v — likely deadlock; all goroutines:\n\n%s\n",
				name, d, buf[:n])
			os.Exit(2)
		}
	}()
}

func grace() time.Duration {
	if v := os.Getenv("LEAKCHECK_GRACE"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return DefaultGrace
}

// wait polls until every non-baseline, non-benign goroutine is gone or
// the grace window lapses, returning the stragglers' stacks.
func wait(baseline map[string]bool, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		var left []string
		for id, stack := range snapshot() {
			if !baseline[id] && !benign(stack) {
				left = append(left, stack)
			}
		}
		if len(left) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return left
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshot returns every user goroutine's stack block, keyed by
// goroutine ID ("goroutine 42 [chan receive]:" → "42").
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[string]string{}
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		rest, ok := strings.CutPrefix(block, "goroutine ")
		if !ok {
			continue
		}
		id, _, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		out[id] = block
	}
	return out
}

// benign reports whether a goroutine belongs to infrastructure that
// legitimately outlives a test: the testing framework's own goroutines
// (parallel subtests parked between runs, the test runner), signal
// handling, and this package's watchdogs.
func benign(stack string) bool {
	for _, marker := range []string{
		"created by testing.",
		"testing.(*M).Run",
		"testing.Main(",
		"testing.runTests",
		"os/signal.",
		"leakcheck.Watchdog",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
