package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// The gate guards its own tests too.
func TestMain(m *testing.M) { Main(m) }

func TestSnapshotSeesThisGoroutine(t *testing.T) {
	stop := make(chan struct{})
	started := make(chan string, 1)
	go func() {
		started <- "ok"
		<-stop
	}()
	<-started
	found := false
	for _, stack := range snapshot() {
		if strings.Contains(stack, "TestSnapshotSeesThisGoroutine") && !strings.Contains(stack, "runtime.Stack") {
			found = true
		}
	}
	close(stop)
	if !found {
		t.Fatal("snapshot did not report a goroutine this test spawned")
	}
}

func TestWaitReportsStragglerThenDrains(t *testing.T) {
	baseline := map[string]bool{}
	for id := range snapshot() {
		baseline[id] = true
	}
	stop := make(chan struct{})
	ready := make(chan struct{})
	go func() {
		close(ready)
		<-stop
	}()
	<-ready
	left := wait(baseline, 50*time.Millisecond)
	if len(left) == 0 {
		t.Fatal("wait missed a goroutine that outlived its grace window")
	}
	if !strings.Contains(strings.Join(left, "\n"), "TestWaitReportsStragglerThenDrains") {
		t.Fatalf("straggler stack does not name its spawner:\n%s", strings.Join(left, "\n\n"))
	}
	close(stop)
	if left := wait(baseline, 2*time.Second); len(left) != 0 {
		t.Fatalf("goroutine still reported after being released:\n%s", strings.Join(left, "\n\n"))
	}
}

func TestBenignFilters(t *testing.T) {
	cases := []struct {
		stack string
		want  bool
	}{
		{"goroutine 9 [chan receive]:\nrepro/internal/wire.(*muxConn).readLoop(...)\n", false},
		{"goroutine 7 [chan receive]:\ntesting.(*T).Parallel(...)\ncreated by testing.(*T).Run\n", true},
		{"goroutine 3 [syscall]:\nos/signal.signal_recv(...)\n", true},
		{"goroutine 12 [select]:\nrepro/internal/lint/leakcheck.Watchdog.func1(...)\n", true},
	}
	for _, c := range cases {
		if got := benign(c.stack); got != c.want {
			t.Errorf("benign(%q) = %v, want %v", c.stack, got, c.want)
		}
	}
}

func TestWatchdogDisarmsOnCompletion(t *testing.T) {
	// Arm with a generous timer; if disarming via Cleanup were broken the
	// leak gate in TestMain would flag the watchdog goroutine — except
	// watchdogs are benign-listed, so assert the channel discipline
	// directly instead: Cleanup must close done and release the select.
	Watchdog(t, time.Hour)
}

func TestGraceEnv(t *testing.T) {
	t.Setenv("LEAKCHECK_GRACE", "123ms")
	if g := grace(); g != 123*time.Millisecond {
		t.Fatalf("grace() = %v with LEAKCHECK_GRACE=123ms", g)
	}
	t.Setenv("LEAKCHECK_GRACE", "not-a-duration")
	if g := grace(); g != DefaultGrace {
		t.Fatalf("grace() = %v with junk LEAKCHECK_GRACE, want default %v", g, DefaultGrace)
	}
}
