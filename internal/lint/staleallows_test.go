package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// TestStaleAllowsDetection plants one live and one stale //lint:allow in
// a throwaway module and checks the meta-pass keeps the first and flags
// the second. This is the correctness proof behind the CI invocation
// `hieras-lint -stale-allows ./...`: without it, the pass could silently
// report nothing forever and suppressions would rot unnoticed.
func TestStaleAllowsDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module from source; skipped in -short mode")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module staletest\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "stale.go"), `package staletest

import "context"

// Root violates ctxflow (Background outside main/tests), so the allow
// on its line is live and must not be reported.
func Root() context.Context {
	return context.Background() //lint:allow ctxflow fixture lifecycle root
}

// Quiet violates nothing: its allow outlived whatever it once excused.
func Quiet() int {
	return 1 //lint:allow ctxflow nothing fires here
}
`)
	prog, err := loader.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load temp module: %v", err)
	}

	findings, err := lint.Run(prog, lint.Analyzers())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding (live allow should suppress): %s", f)
	}

	stale, err := lint.StaleAllows(prog, lint.Analyzers())
	if err != nil {
		t.Fatalf("stale-allows pass: %v", err)
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale allow(s), want exactly 1: %v", len(stale), stale)
	}
	s := stale[0]
	if s.Analyzer != "ctxflow" {
		t.Errorf("stale allow analyzer = %q, want ctxflow", s.Analyzer)
	}
	if filepath.Base(s.Pos.Filename) != "stale.go" || s.Pos.Line != 13 {
		t.Errorf("stale allow at %s:%d, want stale.go:13", s.Pos.Filename, s.Pos.Line)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
