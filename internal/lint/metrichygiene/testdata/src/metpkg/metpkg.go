package metpkg

import (
	"fmt"
	"strconv"

	"metrics"
)

type thing struct {
	c   *metrics.Counter
	vec *metrics.CounterVec
}

// Registration on init paths with registered names: clean.
func New(reg *metrics.Registry) *thing {
	reg.NewCounter("antientropy_rounds_total", "h")
	return &thing{
		c:   reg.NewCounter("good_total", "h"),
		vec: reg.NewCounterVec("hops_total", "h", "layer"),
	}
}

func newGauges(reg *metrics.Registry) *metrics.Gauge {
	return reg.NewGauge("queue_depth", "h")
}

func (t *thing) Instrument(reg *metrics.Registry) {
	reg.NewGaugeFunc("queue_depth", "h", func() float64 { return 0 })
}

// A typo'd name splits a time series: flagged against the registry.
func NewTypo(reg *metrics.Registry) {
	reg.NewCounter("goood_total", "h")             // want `unknown metric name "goood_total"`
	reg.NewCounter("antientropy_round_total", "h") // want `unknown metric name "antientropy_round_total"`
}

// A dynamic name can't be checked at all.
func NewDyn(reg *metrics.Registry, name string) {
	reg.NewCounter(name, "h") // want `metric name must be a compile-time constant`
}

// Registration from a request path mints families per call.
func (t *thing) handle(reg *metrics.Registry) {
	reg.NewCounter("good_total", "h") // want `metric registered outside an init path`
}

type kind string

func (t *thing) labels(k kind, n int, addr string) {
	t.vec.With(string(k)).Inc()               // enum conversion: bounded
	t.vec.With(strconv.Itoa(n)).Inc()         // small-int formatting: bounded
	t.vec.With("static").Inc()                // literal: bounded
	t.vec.With(addr).Inc()                    // want `label value addr is not obviously bounded`
	t.vec.With(string(addr)).Inc()            // want `label value string\(addr\) converts a raw string`
	t.vec.With(fmt.Sprint(n)).Inc()           // want `label value fmt\.Sprint\(n\) formats arbitrary data`
	t.vec.With(fmt.Sprintf("%s", addr)).Inc() // want `formats arbitrary data`
}

// The escape hatch still works here.
func (t *thing) allowedLabel(addr string) {
	t.vec.With(addr).Inc() //lint:allow metrichygiene fixed three-node bench, addresses are bounded
}
