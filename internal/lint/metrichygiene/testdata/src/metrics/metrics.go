// Package metrics is a fixture stand-in for the repo's metrics
// package: the analyzer matches on package NAME, and reads this
// package's own KnownMetricNames registry.
package metrics

type Label struct{ Name, Value string }

type Counter struct{}

func (*Counter) Inc() {}

type Gauge struct{}

func (*Gauge) Set(float64) {}

type Histogram struct{}

func (*Histogram) Observe(float64) {}

type CounterVec struct{}

func (*CounterVec) With(v string) *Counter { return &Counter{} }

type GaugeVec struct{}

func (*GaugeVec) With(v string) *Gauge { return &Gauge{} }

type Registry struct{}

func (*Registry) NewCounter(name, help string) *Counter { return &Counter{} }
func (*Registry) NewGauge(name, help string) *Gauge     { return &Gauge{} }
func (*Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (*Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{}
}
func (*Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{}
}
func (*Registry) NewCounterFunc(name, help string, fn func() float64, labels ...Label) {}
func (*Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label)   {}

const KnownMetricNames = `
antientropy_rounds_total
good_total
hops_total
queue_depth
`
