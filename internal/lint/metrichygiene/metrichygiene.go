// Package metrichygiene enforces the metrics conventions the repo's
// dashboards and experiment reports depend on:
//
//   - Registration happens on init paths only — functions named init,
//     New*/new*, or Instrument*. Registering from a request path either
//     panics (duplicate name) or silently mints families per call.
//   - Metric names are compile-time constants listed in the metrics
//     package's KnownMetricNames registry. A typo splits a time series
//     forever; the registry makes every referenceable name fail loudly
//     instead.
//   - Vec label values are bounded: literals/constants, enum-type
//     conversions, strconv.Itoa, or String() methods. Raw string
//     variables (peer addresses, keys) and fmt.Sprint* make label
//     cardinality unbounded and memory growth linear in traffic.
//
// The pass matches the metrics package by NAME, so fixtures can ship a
// miniature stand-in with their own KnownMetricNames.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the metrichygiene pass.
var Analyzer = &analysis.Analyzer{
	Name: "metrichygiene",
	Doc:  "enforce metric registration placement, checked names, and bounded label cardinality",
	Run:  run,
}

// registerMethods are the metrics.Registry methods whose first argument
// is a metric name.
var registerMethods = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewGaugeVec": true,
	"NewCounterFunc": true, "NewGaugeFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := path.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := initPath(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, inInit)
				return true
			})
		}
	}
	return nil
}

// initPath reports whether a function name marks a registration-safe
// construction path.
func initPath(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Instrument")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inInit bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return
	}
	switch {
	case registerMethods[fn.Name()] && analysis.NamedFromPkg(recv.Type(), "metrics", "Registry"):
		checkRegistration(pass, call, fn, inInit)
	case fn.Name() == "With" &&
		(analysis.NamedFromPkg(recv.Type(), "metrics", "CounterVec") ||
			analysis.NamedFromPkg(recv.Type(), "metrics", "GaugeVec")):
		if len(call.Args) > 0 {
			checkLabelValue(pass, call.Args[0])
		}
	}
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, inInit bool) {
	if !inInit {
		pass.Reportf(call.Pos(),
			"metric registered outside an init path; move %s into an init, New*, or Instrument* function so each family is minted exactly once",
			fn.Name())
	}
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"metric name must be a compile-time constant so the name registry can check it")
		return
	}
	name := constant.StringVal(tv.Value)
	known, ok := knownNames(fn.Pkg())
	if !ok {
		return // metrics package has no registry; nothing to check against
	}
	if !known[name] {
		pass.Reportf(call.Args[0].Pos(),
			"unknown metric name %q; add it to metrics.KnownMetricNames or fix the typo", name)
	}
}

// knownNames reads the KnownMetricNames constant out of the metrics
// package's scope — constant values survive type-checking, so this
// works cross-package without export data.
func knownNames(metricsPkg *types.Package) (map[string]bool, bool) {
	c, _ := metricsPkg.Scope().Lookup("KnownMetricNames").(*types.Const)
	if c == nil || c.Val().Kind() != constant.String {
		return nil, false
	}
	known := map[string]bool{}
	for _, line := range strings.Split(constant.StringVal(c.Val()), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			known[line] = true
		}
	}
	return known, true
}

// checkLabelValue flags label-value expressions with no visible bound
// on their cardinality.
func checkLabelValue(pass *analysis.Pass, arg ast.Expr) {
	arg = ast.Unparen(arg)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return // literal or constant
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		pass.Reportf(arg.Pos(),
			"label value %s is not obviously bounded; use a constant, an enum conversion, strconv.Itoa, or a String() method — raw strings make metric cardinality unbounded",
			types.ExprString(arg))
		return
	}
	// A conversion from plain string launders an unbounded value; a
	// conversion from a named type is an enum by convention.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if at, ok := pass.TypesInfo.Types[call.Args[0]]; ok &&
			types.Identical(at.Type, types.Typ[types.String]) && at.Value == nil {
			pass.Reportf(arg.Pos(),
				"label value %s converts a raw string; conversions only bound cardinality when the source is an enum type",
				types.ExprString(arg))
		}
		return
	}
	// fmt.Sprint* formats arbitrary data into the label.
	if fn := analysis.CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Sprint") {
		pass.Reportf(arg.Pos(),
			"label value %s formats arbitrary data; fmt.Sprint* makes metric cardinality unbounded",
			types.ExprString(arg))
	}
	// Other calls (strconv.Itoa, String() methods) are treated as
	// bounded by convention.
}
