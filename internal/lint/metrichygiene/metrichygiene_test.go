package metrichygiene

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestMetricHygiene(t *testing.T) {
	linttest.Run(t, "testdata/src", "metpkg", Analyzer)
}
