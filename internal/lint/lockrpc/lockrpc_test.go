package lockrpc

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestLockAcrossRPC(t *testing.T) {
	linttest.Run(t, "testdata/src", "lockpkg", Analyzer)
}
