// Package lockrpc enforces the transport locking contract: a mutex is
// never held across an RPC. The routing state guarded by node mutexes
// (successor lists, ring tables, caches) must be copied under the lock,
// the lock released, and only then may the network be consulted —
// otherwise one slow peer stalls every local operation that touches the
// same state, and in the worst case (an RPC that re-enters the node)
// deadlocks it.
//
// An "RPC" is any call whose signature carries a parameter of the wire
// Request type — wire.Caller.Call itself, and every helper that
// forwards to it. A sync.Mutex/RWMutex is considered held from its
// Lock/RLock statement until an Unlock/RUnlock in the same or a nested
// statement list; `defer mu.Unlock()` holds it for the rest of the
// function. Function literals are separate functions: a goroutine
// spawned under the lock does not itself hold it.
//
// The analyzer is conservative about control flow: an Unlock inside a
// nested block clears the lock for that block's remaining statements
// only (the early-unlock-and-return idiom), not for the outer list.
package lockrpc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockrpc pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockrpc",
	Doc:  "forbid holding a mutex across wire RPC calls",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := path.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &scanner{pass: pass}
			s.list(fd.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

type scanner struct {
	pass *analysis.Pass
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock or unlock and
// returns the receiver expression's source text as the lock key.
func (s *scanner) mutexOp(call *ast.CallExpr) (key string, lock, unlock bool) {
	fn := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// isRPC reports whether call's signature carries a wire.Request
// parameter — wire.Caller.Call and everything that forwards to it.
// Methods named *Locked are exempt by the repo's naming convention:
// the suffix declares "runs under the caller's lock, touches no
// network" (server-side dispatch handing a Request to a local helper).
func (s *scanner) isRPC(call *ast.CallExpr) bool {
	var sig *types.Signature
	if fn := analysis.CalleeFunc(s.pass.TypesInfo, call); fn != nil {
		if strings.HasSuffix(fn.Name(), "Locked") {
			return false
		}
		sig = fn.Type().(*types.Signature)
	} else if tv, ok := s.pass.TypesInfo.Types[call.Fun]; ok {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.NamedFromPkg(sig.Params().At(i).Type(), "wire", "Request") {
			return true
		}
	}
	return false
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// list walks one statement list in order, tracking which mutexes are
// held. Nested lists get a copy of the held set so an early unlock on
// one path does not leak into its siblings.
func (s *scanner) list(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		s.stmt(stmt, held)
	}
}

func (s *scanner) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, lock, unlock := s.mutexOp(call); lock {
				held[key] = call.Pos()
				return
			} else if unlock {
				delete(held, key)
				return
			}
		}
		s.checkTree(st, held)
	case *ast.DeferStmt:
		if _, _, unlock := s.mutexOp(st.Call); unlock {
			return // held until return; the rest of the list is under it
		}
		s.checkTree(st, held)
	case *ast.BlockStmt:
		s.list(st.List, clone(held))
	case *ast.IfStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		s.checkTree(st.Cond, held)
		s.list(st.Body.List, clone(held))
		if st.Else != nil {
			s.stmt(st.Else, clone(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		if st.Cond != nil {
			s.checkTree(st.Cond, held)
		}
		if st.Post != nil {
			s.checkTree(st.Post, held)
		}
		s.list(st.Body.List, clone(held))
	case *ast.RangeStmt:
		s.checkTree(st.X, held)
		s.list(st.Body.List, clone(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		if st.Tag != nil {
			s.checkTree(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.list(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.list(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := clone(held)
				if cc.Comm != nil {
					s.stmt(cc.Comm, inner)
				}
				s.list(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.GoStmt:
		s.checkTree(st, held) // FuncLit inside gets a fresh held set
	default:
		s.checkTree(stmt, held)
	}
}

// checkTree inspects a non-block subtree for RPC calls made while any
// mutex is held. Function literals are scanned as fresh functions —
// they execute on their own goroutine's (or caller's) schedule and do
// not inherit the surrounding held set.
func (s *scanner) checkTree(n ast.Node, held map[string]token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.list(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.CallExpr:
			if len(held) > 0 && s.isRPC(n) {
				keys := make([]string, 0, len(held))
				for key := range held {
					keys = append(keys, key)
				}
				sort.Strings(keys)
				for _, key := range keys {
					s.pass.Reportf(n.Pos(),
						"RPC %s while %q is held (locked at line %d); copy state under the lock, release it, then call",
						types.ExprString(n.Fun), key, s.pass.Fset.Position(held[key]).Line)
				}
			}
		}
		return true
	})
}
