package lockpkg

import (
	"sync"
	"time"

	"wire"
)

type node struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	succ string
	c    wire.Caller
}

func (n *node) bad(req wire.Request) {
	n.mu.Lock()
	n.c.Call(n.succ, req, time.Second) // want `RPC n\.c\.Call while "n\.mu" is held`
	n.mu.Unlock()
}

func (n *node) deferBad(req wire.Request) (wire.Response, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.c.Call(n.succ, req, time.Second) // want `RPC n\.c\.Call while "n\.mu" is held`
}

func (n *node) good(req wire.Request) (wire.Response, error) {
	n.mu.Lock()
	addr := n.succ
	n.mu.Unlock()
	return n.c.Call(addr, req, time.Second)
}

func (n *node) rlockBad(req wire.Request) {
	n.rw.RLock()
	defer n.rw.RUnlock()
	n.c.Call(n.succ, req, time.Second) // want `RPC n\.c\.Call while "n\.rw" is held`
}

func (n *node) earlyUnlock(req wire.Request) (wire.Response, error) {
	n.mu.Lock()
	if n.succ == "" {
		n.mu.Unlock()
		return n.c.Call("seed", req, time.Second) // unlocked on this path
	}
	addr := n.succ
	n.mu.Unlock()
	return n.c.Call(addr, req, time.Second)
}

func (n *node) nestedBad(req wire.Request) {
	n.mu.Lock()
	if n.succ != "" {
		n.c.Call(n.succ, req, time.Second) // want `RPC n\.c\.Call while "n\.mu" is held`
	}
	n.mu.Unlock()
}

// A goroutine spawned under the lock runs without it: not flagged.
func (n *node) goroutineOK(req wire.Request) {
	n.mu.Lock()
	done := make(chan struct{})
	go func() {
		n.c.Call("x", req, time.Second)
		close(done)
	}()
	n.mu.Unlock()
	<-done
}

// Helpers that forward a wire.Request count as RPC-reaching too.
func (n *node) forward(addr string, req wire.Request) {
	n.c.Call(addr, req, time.Second)
}

func (n *node) helperBad(req wire.Request) {
	n.mu.Lock()
	n.forward(n.succ, req) // want `RPC n\.forward while "n\.mu" is held`
	n.mu.Unlock()
}

// Two locks held: one report per lock, key order deterministic.
func (n *node) doubleBad(req wire.Request) {
	n.mu.Lock()
	n.rw.Lock()
	n.c.Call(n.succ, req, time.Second) // want `while "n\.mu" is held` `while "n\.rw" is held`
	n.rw.Unlock()
	n.mu.Unlock()
}

// Calls through a function value are resolved from the expression type.
func (n *node) funcValueBad(req wire.Request, send func(string, wire.Request) error) {
	n.mu.Lock()
	send(n.succ, req) // want `RPC send while "n\.mu" is held`
	n.mu.Unlock()
}

// *Locked helpers run under the caller's lock by convention and touch
// no network even though their signatures carry a Request.
func (n *node) serveLocked(req wire.Request) string { return n.succ }

func (n *node) dispatchOK(req wire.Request) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serveLocked(req)
}

// An escape hatch with a reason is honored.
func (n *node) allowed(req wire.Request) {
	n.mu.Lock()
	n.c.Call(n.succ, req, time.Second) //lint:allow lockrpc startup path, no concurrent readers yet
	n.mu.Unlock()
}
