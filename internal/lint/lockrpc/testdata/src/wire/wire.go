// Package wire is a fixture stand-in for the repo's wire package: the
// analyzers match on package NAME, so this minimal shape is enough.
package wire

import "time"

type Request interface{ Type() int }

type Response interface{}

type Caller interface {
	Call(addr string, req Request, timeout time.Duration) (Response, error)
}
