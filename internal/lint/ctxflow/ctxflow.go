// Package ctxflow enforces context propagation now that the wire
// Caller is ctx-first: cancellation flows from the caller down to every
// RPC, and nothing in library code silently detaches from it.
//
// Three rules, applied outside package main and _test.go files:
//
//  1. context.Background() and context.TODO() are forbidden. Roots
//     belong in main and in tests; everything else receives its
//     context. The node's lifecycle root (cancelled by Close) is the
//     one sanctioned library root and carries a reasoned //lint:allow.
//  2. When a function declares a context.Context parameter, it must be
//     the first parameter (receiver aside) — the convention every
//     wire.Request-reaching chain in this repo follows.
//  3. A function that has a context parameter must pass it (or a
//     context derived from it) onward, never rebuild one:
//     context.Background()/TODO() as a call argument inside such a
//     function severs the caller's cancellation exactly where it was
//     supposed to flow.
//
// Escape of a derived-with-cancel context without its cancel being
// called or returned is the stock lostcancel pass's job; ctxflow
// deliberately does not duplicate it.
package ctxflow

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background/TODO outside main and tests; ctx is the first parameter and is propagated, not rebuilt",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		name := path.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxFirst(pass, n.Type, n.Name.Name)
				if n.Body != nil {
					checkBody(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkCtxFirst(pass, n.Type, "func literal")
				checkBody(pass, n.Type, n.Body)
			}
			// Keep descending: checkBody stops at nested literals, so each
			// literal is picked up exactly once, here, with its own signature.
			return true
		})
	}
	return nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether ft declares a context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isCtxType(tv.Type) {
			return true
		}
	}
	return false
}

// checkCtxFirst enforces rule 2: a declared context parameter sits in
// position zero.
func checkCtxFirst(pass *analysis.Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	for i, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isCtxType(tv.Type) && i > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of %s", name)
		}
	}
}

// checkBody enforces rules 1 and 3 over one function body. Nested
// function literals are handled by the outer Inspect, not here.
func checkBody(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	hasCtx := hasCtxParam(pass, ft)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately with its own signature
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case analysis.IsPkgCall(pass.TypesInfo, call, "context", "Background"):
			name = "context.Background"
		case analysis.IsPkgCall(pass.TypesInfo, call, "context", "TODO"):
			name = "context.TODO"
		default:
			return true
		}
		if hasCtx {
			pass.Reportf(call.Pos(),
				"%s rebuilds a fresh context inside a function that already has one; propagate the ctx parameter (derive with WithTimeout/WithCancel if a tighter bound is needed)", name)
		} else {
			pass.Reportf(call.Pos(),
				"%s outside main/tests detaches this call chain from cancellation; accept a ctx parameter and propagate it", name)
		}
		return true
	})
}
