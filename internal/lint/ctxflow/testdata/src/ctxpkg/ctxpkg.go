package ctxpkg

import "context"

func use(ctx context.Context) { _ = ctx }

// A context root in library code detaches the chain from cancellation.
func Root() {
	use(context.Background()) // want `context\.Background outside main/tests`
}

func Todo() {
	use(context.TODO()) // want `context\.TODO outside main/tests`
}

// Worse: the function already has a ctx and builds a fresh one anyway.
func Rebuild(ctx context.Context) {
	use(context.Background()) // want `rebuilds a fresh context`
}

// Deriving from the parameter is the sanctioned shape.
func Derive(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	use(child)
}

func WrongOrder(addr string, ctx context.Context) { // want `must be the first parameter`
	use(ctx)
	_ = addr
}

func FirstIsFine(ctx context.Context, addr string) {
	use(ctx)
	_ = addr
}

// Methods count the receiver separately; ctx first is still enforced on
// the parameter list itself.
type client struct{}

func (c *client) Do(ctx context.Context, addr string) { use(ctx) }

func (c *client) Bad(addr string, ctx context.Context) { // want `must be the first parameter`
	use(ctx)
	_ = addr
}

// Function literals follow the same rules.
func Literals() {
	f := func(n int, ctx context.Context) { // want `must be the first parameter`
		use(ctx)
		_ = n
	}
	f(1, context.TODO()) // want `context\.TODO outside main/tests`
}

// A reasoned allow marks the sanctioned lifecycle roots.
func LifecycleRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) //lint:allow ctxflow fixture lifecycle root owned and cancelled by Close
}
