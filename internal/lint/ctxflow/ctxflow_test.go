package ctxflow

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/src", "ctxpkg", Analyzer)
}
