package lockorder

import (
	"testing"

	"repro/internal/lint/linttest"
)

// The cycle spans three fixture packages; only a program-level pass
// over all of them sees it.
func TestLockOrderCycles(t *testing.T) {
	linttest.RunPkgs(t, "testdata/src", []string{"lockc", "locka", "lockb"}, Analyzer)
}
