// Package lockc is the shared dependency of the lock-order fixtures:
// its mutex participates in a cross-package cycle that neither locka
// nor lockb can see alone.
package lockc

import "sync"

type C struct {
	Mu  sync.Mutex
	hit int
}

// Grab acquires C's lock; callers holding their own lock create an
// ordering edge into lockc.C.Mu.
func (c *C) Grab() {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	c.hit++
}
