package lockb

import (
	"sync"

	"locka"
	"lockc"
)

// Backward completes the cycle from locka.Forward: C.Mu → A.Mu here,
// A.Mu → C.Mu there. Neither package sees both edges alone — only the
// program-wide graph does.
func Backward(a *locka.A, c *lockc.C) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	a.Mu.Lock() // want `lock locka\.A\.Mu acquired while lockc\.C\.Mu is held`
	a.Mu.Unlock()
}

type B struct {
	Mu sync.Mutex
}

// A consistent order used everywhere (A before B) is exactly what the
// analyzer asks for — edges exist, no cycle, no finding.
func First(a *locka.A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.Mu.Unlock()
}

func Second(a *locka.A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock()
	b.Mu.Unlock()
}
