package locka

import (
	"sync"

	"lockc"
)

type A struct {
	Mu sync.Mutex
	n  int
}

// Forward establishes A.Mu → C.Mu through a cross-package call.
func Forward(a *A, c *lockc.C) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	a.n++
	c.Grab() // want `lock lockc\.C\.Mu acquired while locka\.A\.Mu is held`
}

func lockAgain(a *A) {
	a.Mu.Lock()
	a.n++
	a.Mu.Unlock()
}

// Reentry is a self-cycle: the callee re-acquires the lock the caller
// already holds, which deadlocks on a plain sync.Mutex.
func Reentry(a *A) {
	a.Mu.Lock()
	lockAgain(a) // want `lock locka\.A\.Mu acquired while already held`
	a.Mu.Unlock()
}

// UnlockedCall releases first — no edge, no finding.
func UnlockedCall(a *A, c *lockc.C) {
	a.Mu.Lock()
	a.n++
	a.Mu.Unlock()
	c.Grab()
}

// Local mutexes are per-function classes: nested ordering between a
// local and a field never aliases across functions, so no cycle arises.
func LocalNested(a *A) {
	var mu sync.Mutex
	mu.Lock()
	a.Mu.Lock()
	a.n++
	a.Mu.Unlock()
	mu.Unlock()
}
