// Package lockorder builds the static mutex-acquisition graph across
// the whole program and flags lock-order inversions — the deadlock
// class -race cannot see, and the cross-lock sibling of lockrpc's
// lock-across-RPC contract.
//
// A lock class is a mutex's declaration site: a named struct field
// (pkg.Type.field — every instance of wire.muxConn.mu is one class), a
// package-level var, or a function-local var. Within each function the
// analyzer tracks the held set path-sensitively (Lock/RLock,
// Unlock/RUnlock, defer Unlock, early-unlock in nested blocks, fresh
// sets for goroutines and function literals — the same discipline as
// lockrpc), and records an edge A→B whenever B is acquired while A is
// held: directly, or through a call whose transitive may-lock summary
// contains B. Summaries are computed to a fixpoint over every loaded
// package, so an edge from transport.Node.mu into replica.Engine.mu or
// routes.Table.mu is seen even though the acquisitions live in
// different packages.
//
// Any strongly connected component of that graph is a potential
// deadlock: two classes mutually reachable means two goroutines can
// acquire them in opposite orders. Every edge inside an SCC (including
// a self-edge — re-acquiring a class that is already held) is
// reported at the position of the offending acquisition.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "flag cycles in the program-wide mutex acquisition graph (potential lock-order deadlocks)",
	RunProgram: run,
}

// classID identifies one lock class: "pkgpath.Type.field",
// "pkgpath.var" or "pkgpath.func.local".
type classID string

// funcKey identifies a function across units: "pkgpath.Recv.Name" —
// string-keyed so a call resolved against a bodies-ignored dependency
// package matches the fully-checked unit that owns the body.
type funcKey string

// edge is one observed acquisition order: to was acquired while from
// was held.
type edge struct {
	from, to classID
	pos      token.Pos
	via      string // callee name for summary-derived edges, "" for direct Lock
}

type fnInfo struct {
	key     funcKey
	unit    *analysis.Unit
	decl    *ast.FuncDecl
	direct  map[classID]bool
	callees []funcKey
	maylock map[classID]bool
}

func run(pass *analysis.ProgramPass) error {
	g := &graph{pass: pass, edges: map[[2]classID]*edge{}}
	var fns []*fnInfo
	byKey := map[funcKey]*fnInfo{}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			if strings.HasSuffix(path.Base(pass.Fset.Position(f.Pos()).Filename), "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := u.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				fi := &fnInfo{key: keyOf(fn), unit: u, decl: fd, direct: map[classID]bool{}, maylock: map[classID]bool{}}
				g.collectSummary(fi)
				fns = append(fns, fi)
				// Two units can both carry a body for one key only if a
				// package is loaded twice; last one wins, harmlessly.
				byKey[fi.key] = fi
			}
		}
	}
	// May-lock fixpoint: propagate callee summaries until stable.
	for _, fi := range fns {
		for c := range fi.direct {
			fi.maylock[c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, ck := range fi.callees {
				callee, ok := byKey[ck]
				if !ok {
					continue
				}
				for c := range callee.maylock {
					if !fi.maylock[c] {
						fi.maylock[c] = true
						changed = true
					}
				}
			}
		}
	}
	// Edge generation: path-sensitive walk of every body.
	for _, fi := range fns {
		s := &scanner{g: g, fi: fi, byKey: byKey}
		s.list(fi.decl.Body.List, map[classID]token.Pos{})
	}
	g.reportCycles()
	return nil
}

// keyOf builds the cross-unit key of a function or method.
func keyOf(fn *types.Func) funcKey {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name() + "."
		}
	}
	return funcKey(pkg + "." + recv + fn.Name())
}

type graph struct {
	pass  *analysis.ProgramPass
	edges map[[2]classID]*edge
	order [][2]classID // insertion order, for deterministic reporting
}

func (g *graph) addEdge(from, to classID, pos token.Pos, via string) {
	k := [2]classID{from, to}
	if _, ok := g.edges[k]; ok {
		return
	}
	g.edges[k] = &edge{from: from, to: to, pos: pos, via: via}
	g.order = append(g.order, k)
}

// collectSummary records fi's directly-acquired classes and resolvable
// callees. Function literals and goroutine bodies are excluded: their
// execution is not part of this function's lock region.
func (g *graph) collectSummary(fi *fnInfo) {
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if cls, lock, _ := mutexOp(fi, n); lock {
				fi.direct[cls] = true
				return true
			}
			if fn := analysis.CalleeFunc(fi.unit.TypesInfo, n); fn != nil {
				fi.callees = append(fi.callees, keyOf(fn))
			}
		}
		return true
	})
}

// mutexOp classifies a call as a sync Lock/RLock or Unlock/RUnlock on a
// resolvable lock class.
func mutexOp(fi *fnInfo, call *ast.CallExpr) (cls classID, lock, unlock bool) {
	fn := analysis.CalleeFunc(fi.unit.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	isLock := fn.Name() == "Lock" || fn.Name() == "RLock"
	isUnlock := fn.Name() == "Unlock" || fn.Name() == "RUnlock"
	if !isLock && !isUnlock {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	cls, ok = classOf(fi, sel.X)
	if !ok {
		return "", false, false
	}
	return cls, isLock, isUnlock
}

// classOf resolves a mutex expression to its lock class.
func classOf(fi *fnInfo, x ast.Expr) (classID, bool) {
	info := fi.unit.TypesInfo
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			obj := sel.Obj()
			if obj == nil || obj.Pkg() == nil {
				return "", false
			}
			owner := namedName(sel.Recv())
			if owner != "" {
				return classID(obj.Pkg().Path() + "." + owner + "." + obj.Name()), true
			}
			return classID(obj.Pkg().Path() + "." + obj.Name()), true
		}
		if obj := info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return classID(obj.Pkg().Path() + "." + obj.Name()), true // pkg-qualified var
		}
	case *ast.Ident:
		v, ok := analysis.ObjectOf(info, x).(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() || v.IsField() {
			return classID(v.Pkg().Path() + "." + v.Name()), true
		}
		// Function-local mutex: scoped to this function's key, so two
		// functions' locals never alias.
		return classID(string(fi.key) + "." + v.Name()), true
	}
	return "", false
}

func namedName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func clone(held map[classID]token.Pos) map[classID]token.Pos {
	out := make(map[classID]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// scanner walks one function path-sensitively, mirroring lockrpc's
// discipline, emitting acquisition edges into the graph.
type scanner struct {
	g     *graph
	fi    *fnInfo
	byKey map[funcKey]*fnInfo
}

func (s *scanner) list(stmts []ast.Stmt, held map[classID]token.Pos) {
	for _, stmt := range stmts {
		s.stmt(stmt, held)
	}
}

func (s *scanner) stmt(stmt ast.Stmt, held map[classID]token.Pos) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if cls, lock, unlock := mutexOp(s.fi, call); lock {
				s.acquire(cls, call.Pos(), held)
				return
			} else if unlock {
				delete(held, cls)
				return
			}
		}
		s.checkTree(st, held)
	case *ast.DeferStmt:
		if _, _, unlock := mutexOp(s.fi, st.Call); unlock {
			return // held until return; the rest of the list is under it
		}
		s.checkTree(st, held)
	case *ast.BlockStmt:
		s.list(st.List, clone(held))
	case *ast.IfStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		s.checkTree(st.Cond, held)
		s.list(st.Body.List, clone(held))
		if st.Else != nil {
			s.stmt(st.Else, clone(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		if st.Cond != nil {
			s.checkTree(st.Cond, held)
		}
		if st.Post != nil {
			s.checkTree(st.Post, held)
		}
		s.list(st.Body.List, clone(held))
	case *ast.RangeStmt:
		s.checkTree(st.X, held)
		s.list(st.Body.List, clone(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.checkTree(st.Init, held)
		}
		if st.Tag != nil {
			s.checkTree(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.list(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.list(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := clone(held)
				if cc.Comm != nil {
					s.stmt(cc.Comm, inner)
				}
				s.list(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.GoStmt:
		s.checkTree(st, held) // FuncLit inside gets a fresh held set
	default:
		s.checkTree(stmt, held)
	}
}

// acquire records edges held→cls, then marks cls held.
func (s *scanner) acquire(cls classID, pos token.Pos, held map[classID]token.Pos) {
	for h := range held {
		s.g.addEdge(h, cls, pos, "")
	}
	held[cls] = pos
}

// checkTree inspects a non-block subtree: direct lock acquisitions in
// expression position and calls whose may-lock summary acquires under
// the held set. Function literals start over with nothing held.
func (s *scanner) checkTree(n ast.Node, held map[classID]token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.list(n.Body.List, map[classID]token.Pos{})
			return false
		case *ast.CallExpr:
			if cls, lock, unlock := mutexOp(s.fi, n); lock {
				s.acquire(cls, n.Pos(), held)
				return true
			} else if unlock {
				delete(held, cls)
				return true
			}
			if len(held) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(s.fi.unit.TypesInfo, n)
			if fn == nil {
				return true
			}
			callee, ok := s.byKey[keyOf(fn)]
			if !ok {
				return true
			}
			for c := range callee.maylock {
				for h := range held {
					s.g.addEdge(h, c, n.Pos(), fn.Name())
				}
			}
		}
		return true
	})
}

// reportCycles runs Tarjan's SCC over the class graph and reports every
// edge that stays inside a component (plus self-edges).
func (g *graph) reportCycles() {
	adj := map[classID][]classID{}
	var nodes []classID
	seen := map[classID]bool{}
	addNode := func(c classID) {
		if !seen[c] {
			seen[c] = true
			nodes = append(nodes, c)
		}
	}
	for _, k := range g.order {
		addNode(k[0])
		addNode(k[1])
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, c := range nodes {
		sort.Slice(adj[c], func(i, j int) bool { return adj[c][i] < adj[c][j] })
	}

	comp := tarjan(nodes, adj)
	compSize := map[int]int{}
	for _, id := range comp {
		compSize[id]++
	}
	members := map[int][]classID{}
	for _, c := range nodes {
		members[comp[c]] = append(members[comp[c]], c)
	}
	for _, k := range g.order {
		e := g.edges[k]
		self := e.from == e.to
		if !self && (comp[e.from] != comp[e.to] || compSize[comp[e.from]] < 2) {
			continue
		}
		var msg string
		if self {
			msg = fmt.Sprintf("lock %s acquired while already held", short(e.from))
		} else {
			cyc := members[comp[e.from]]
			parts := make([]string, len(cyc))
			for i, c := range cyc {
				parts[i] = short(c)
			}
			msg = fmt.Sprintf("lock %s acquired while %s is held, but the reverse order also exists (cycle: %s)",
				short(e.to), short(e.from), strings.Join(parts, " ⇄ "))
		}
		if e.via != "" {
			msg += fmt.Sprintf(" — via call to %s", e.via)
		}
		g.pass.Reportf(e.pos, "%s; a second goroutine taking these in the opposite order deadlocks", msg)
	}
}

// short trims the import-path prefix off a class ID for readable
// diagnostics: "repro/internal/wire.muxConn.mu" → "wire.muxConn.mu".
func short(c classID) string {
	s := string(c)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// tarjan computes strongly connected components; the returned map
// assigns each node a component id.
func tarjan(nodes []classID, adj map[classID][]classID) map[classID]int {
	index := map[classID]int{}
	low := map[classID]int{}
	onStack := map[classID]bool{}
	comp := map[classID]int{}
	var stack []classID
	next, ncomp := 0, 0

	var strongconnect func(v classID)
	strongconnect = func(v classID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return comp
}
