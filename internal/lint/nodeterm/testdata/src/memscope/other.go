package memscope

import "time"

// This file is outside the package's mem*.go scope glob: the same call
// is legal here.
func otherClock() time.Time {
	return time.Now()
}
