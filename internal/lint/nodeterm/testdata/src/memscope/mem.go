package memscope

import "time"

// This file matches the package's mem*.go scope glob, so the contract
// applies.
func memClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
