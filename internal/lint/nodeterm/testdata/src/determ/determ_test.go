package determ

import (
	"testing"
	"time"
)

// Test files are exempt from the determinism contract: measuring wall
// time in a test is fine, so nothing here may be flagged.
func TestWallClockIsFineHere(t *testing.T) {
	start := time.Now()
	time.Sleep(time.Microsecond)
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
