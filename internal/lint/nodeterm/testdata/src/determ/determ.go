package determ

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the wall clock`
}

func since(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func allowed() time.Time {
	return time.Now() //lint:allow nodeterm elapsed is report-only and never feeds execution
}

func reasonless() time.Time {
	return time.Now() //lint:allow nodeterm // want `time\.Now reads the wall clock` `lint:allow nodeterm needs a reason`
}

func draw() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func seeded() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(10)
}

func collect(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to "out"`
		out = append(out, k)
	}
	return out
}

func collectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectSortSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func localCollect(m map[string]int) {
	for k := range m {
		var tmp []string
		tmp = append(tmp, k)
		_ = tmp
	}
}

func timerGuard(ch chan int, d time.Duration) int {
	// time.After as a select timeout is a liveness guard, exempt by
	// contract: it fires only when the system is already wedged.
	select {
	case v := <-ch:
		return v
	case <-time.After(d):
		return -1
	}
}
