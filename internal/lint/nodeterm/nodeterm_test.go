package nodeterm

import (
	"testing"

	"repro/internal/lint/linttest"
)

// scoped points the analyzer at fixture packages for one test.
func scoped(t *testing.T, scope map[string][]string) {
	t.Helper()
	saved := Deterministic
	Deterministic = scope
	t.Cleanup(func() { Deterministic = saved })
}

func TestDeterministicPackage(t *testing.T) {
	scoped(t, map[string][]string{"determ": nil})
	linttest.Run(t, "testdata/src", "determ", Analyzer)
}

func TestFileGlobScope(t *testing.T) {
	scoped(t, map[string][]string{"memscope": {"mem*.go"}})
	linttest.Run(t, "testdata/src", "memscope", Analyzer)
}

func TestOutOfScopePackageIsIgnored(t *testing.T) {
	// The determ fixture is full of violations, but with no scope entry
	// the analyzer must stay silent (the malformed-allow finding is the
	// suppression layer's, not nodeterm's, and fires regardless).
	scoped(t, map[string][]string{})
	for _, d := range linttest.Diagnostics(t, "testdata/src", "determ", Analyzer) {
		if d.Analyzer == "nodeterm" {
			t.Fatalf("out-of-scope package produced nodeterm diagnostic: %v", d)
		}
	}
}

func TestRealScopeCoversContractPackages(t *testing.T) {
	for _, pkg := range []string{
		"repro/internal/eventsim",
		"repro/internal/simcheck",
		"repro/internal/faultnet",
		"repro/internal/experiments",
		"repro/internal/wire",
	} {
		if _, ok := Deterministic[pkg]; !ok {
			t.Errorf("deterministic scope lost %s", pkg)
		}
	}
}
