// Package nodeterm enforces the determinism contract of the simulation
// packages: replay (simcheck.Replay, faultnet.Replay, the experiments
// commit frontier) only reproduces when the code between a seed and its
// results never consults the wall clock, a global random source, or map
// iteration order. The rules:
//
//   - no time.Now / time.Since / time.Until / time.Sleep / time.Tick /
//     time.AfterFunc. Timeout guards (time.After, time.NewTimer in a
//     select) are exempt by design: a timer that only fires once the
//     system is already wedged shapes no replayed result.
//   - no package-level math/rand calls (rand.Intn, rand.Shuffle, ...);
//     seeded rand.New(rand.NewSource(seed)) streams are the idiom.
//   - no ranging over a map while appending to a slice declared outside
//     the loop, unless the slice is sorted later in the same block —
//     the shape that leaks map order into results.
//
// Test files are exempt (measuring wall time in a test is fine).
// Genuine wall-clock needs — elapsed-time reporting that never feeds
// back into execution — use the escape hatch, reason required:
//
//	start := time.Now() //lint:allow nodeterm elapsed is report-only
package nodeterm

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint/analysis"
)

// Deterministic maps each covered import path to the file basename
// globs the contract applies to (nil means every non-test file). Tests
// may override this to point at fixtures.
var Deterministic = map[string][]string{
	"repro/internal/eventsim":    nil,
	"repro/internal/simcheck":    nil,
	"repro/internal/faultnet":    nil,
	"repro/internal/experiments": nil,
	"repro/internal/wire":        {"mem.go", "mem_*.go"},
}

// Analyzer is the nodeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock, global randomness and map-order dependence in deterministic packages",
	Run:  run,
}

// forbidden maps package path -> function name -> message.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "time.Now reads the wall clock; deterministic code must take time from the harness (eventsim clock or logical sequence)",
		"Since":     "time.Since reads the wall clock; deterministic code must take time from the harness (eventsim clock or logical sequence)",
		"Until":     "time.Until reads the wall clock; deterministic code must take time from the harness (eventsim clock or logical sequence)",
		"Sleep":     "time.Sleep blocks on the wall clock; use the event-sim clock or an injected sleeper",
		"Tick":      "time.Tick fires on the wall clock; schedule through the event-sim clock instead",
		"AfterFunc": "time.AfterFunc fires on the wall clock; schedule through the event-sim clock instead",
	},
}

// randExempt lists the math/rand functions that are allowed: stream
// constructors, which are exactly how seeded determinism is built.
var randExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	globs, ok := Deterministic[pass.Pkg.Path()]
	if !ok {
		// External test packages share the package's contract.
		base := strings.TrimSuffix(pass.Pkg.Path(), "_test")
		if globs, ok = Deterministic[base]; !ok {
			return nil
		}
	}
	for _, f := range pass.Files {
		name := path.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if len(globs) > 0 && !matchAny(globs, name) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func matchAny(globs []string, name string) bool {
	for _, g := range globs {
		if ok, _ := path.Match(g, name); ok {
			return true
		}
	}
	return false
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.BlockStmt:
			checkStmtList(pass, n.List)
		case *ast.CaseClause:
			checkStmtList(pass, n.Body)
		case *ast.CommClause:
			checkStmtList(pass, n.Body)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if msgs, ok := forbidden[pkg]; ok {
		if msg, ok := msgs[name]; ok {
			pass.Reportf(call.Pos(), "%s", msg)
		}
		return
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && !randExempt[name] {
		pass.Reportf(call.Pos(),
			"global math/rand.%s draws from a shared nondeterministic source; use a seeded rand.New(rand.NewSource(seed)) stream", name)
	}
}

// checkStmtList flags a `for range m { out = append(out, ...) }` over a
// map when out is declared outside the loop and no later statement in
// the same block sorts it.
func checkStmtList(pass *analysis.Pass, list []ast.Stmt) {
	for i, stmt := range list {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		for _, target := range appendTargets(pass, rs) {
			if sortedLater(pass, list[i+1:], target) {
				continue
			}
			pass.Reportf(rs.Pos(),
				"map iteration appends to %q in nondeterministic order; sort the keys first or sort %q in this block afterwards",
				target.Name(), target.Name())
		}
	}
}

// appendTargets returns the objects of slices declared outside rs that
// the loop body appends to.
func appendTargets(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fnID, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || fnID.Name != "append" {
			return true
		} else if _, isBuiltin := pass.TypesInfo.Uses[fnID].(*types.Builtin); !isBuiltin {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := analysis.ObjectOf(pass.TypesInfo, id)
		if obj == nil || seen[obj] {
			return true
		}
		// Declared outside the loop?
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// sortedLater reports whether a later statement sorts obj (any call
// into package sort or slices that mentions it).
func sortedLater(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentions := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && analysis.ObjectOf(pass.TypesInfo, id) == obj {
						mentions = true
					}
					return !mentions
				})
				if mentions {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
