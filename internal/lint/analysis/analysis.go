// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface the hieras-lint suite
// needs. The container this repo builds in has no module proxy access,
// so the real x/tools package cannot be fetched; the types here keep
// the analyzers source-compatible with it (an Analyzer has Name, Doc
// and Run(*Pass); a Pass carries the package's syntax, type info and a
// Report sink), so a future PR can swap the import path and delete this
// package without touching analyzer logic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and //lint:allow suppressions.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of input to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives diagnostics. The driver installs a sink that
	// applies //lint:allow suppression before anything is printed.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos, stamped with the pass's
// analyzer name so the suppression layer can match //lint:allow
// directives against it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}
