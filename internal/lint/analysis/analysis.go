// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface the hieras-lint suite
// needs. The container this repo builds in has no module proxy access,
// so the real x/tools package cannot be fetched; the types here keep
// the analyzers source-compatible with it (an Analyzer has Name, Doc
// and Run(*Pass); a Pass carries the package's syntax, type info and a
// Report sink), so a future PR can swap the import path and delete this
// package without touching analyzer logic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and //lint:allow suppressions. Exactly one of Run and
// RunProgram is set: Run analyzes one package at a time, RunProgram sees
// every loaded package in a single invocation — for contracts that only
// exist across package boundaries, like the lock-acquisition graph
// spanning transport, replica, routes and wire.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// RunProgram, when non-nil, makes this a program-level analyzer: the
	// driver calls it once with every loaded package instead of calling
	// Run per package.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package's worth of input to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives diagnostics. The driver installs a sink that
	// applies //lint:allow suppression before anything is printed.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos, stamped with the pass's
// analyzer name so the suppression layer can match //lint:allow
// directives against it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Unit is one package's syntax and type information inside a
// program-level pass — the per-package slice of a Pass without the
// reporting machinery.
type Unit struct {
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// ProgramPass carries every loaded package to a program-level
// analyzer's RunProgram.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Units    []*Unit

	// Report receives diagnostics, exactly as on Pass.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos, stamped with the pass's analyzer
// name.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
