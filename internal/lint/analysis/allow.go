package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix is the escape-hatch directive. The full form is
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: an allow without one is itself a diagnostic (reported
// under the "allow" pseudo-analyzer), so CI fails on reasonless
// suppressions.
const AllowPrefix = "//lint:allow"

// Allow is one parsed //lint:allow directive.
type Allow struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// ParseAllows extracts every //lint:allow directive from a file.
func ParseAllows(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, AllowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowed — not this directive
			}
			// A second // inside the comment (fixture want annotations)
			// ends the directive.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			a := Allow{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
			if len(fields) > 0 {
				a.Analyzer = fields[0]
				a.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, a)
		}
	}
	return out
}

// Suppressor filters diagnostics against a package's allow directives
// and reports malformed directives as diagnostics of their own.
type Suppressor struct {
	// keyed by "<analyzer>\x00<file>\x00<line>" of the directive's own
	// line; a directive suppresses findings on its line and the line
	// below, in its own file only.
	allowed map[string]bool
	bad     []Diagnostic
}

// NewSuppressor parses the allow directives of all files. known names
// the valid analyzers; a directive naming anything else is reported.
func NewSuppressor(fset *token.FileSet, files []*ast.File, known map[string]bool) *Suppressor {
	s := &Suppressor{allowed: make(map[string]bool)}
	for _, f := range files {
		for _, a := range ParseAllows(fset, f) {
			switch {
			case a.Analyzer == "":
				s.bad = append(s.bad, Diagnostic{Pos: a.Pos, Analyzer: "allow",
					Message: "lint:allow needs an analyzer name and a reason"})
			case !known[a.Analyzer]:
				s.bad = append(s.bad, Diagnostic{Pos: a.Pos, Analyzer: "allow",
					Message: "lint:allow names unknown analyzer " + a.Analyzer})
			case a.Reason == "":
				s.bad = append(s.bad, Diagnostic{Pos: a.Pos, Analyzer: "allow",
					Message: "lint:allow " + a.Analyzer + " needs a reason"})
			default:
				s.allowed[key(a.Analyzer, a.File, a.Line)] = true
				s.allowed[key(a.Analyzer, a.File, a.Line+1)] = true
			}
		}
	}
	return s
}

func key(analyzer, file string, line int) string {
	return analyzer + "\x00" + file + "\x00" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Suppressed reports whether d is covered by an allow directive.
func (s *Suppressor) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s.allowed[key(d.Analyzer, pos.Filename, pos.Line)]
}

// Malformed returns the diagnostics for reasonless or unknown-analyzer
// directives.
func (s *Suppressor) Malformed() []Diagnostic { return s.bad }
