package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions and calls through plain function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// NamedFromPkg reports whether t (pointers dereferenced) is a named or
// alias type called typeName declared in a package whose NAME is
// pkgName. Matching on package name rather than full import path lets
// fixtures declare fake "wire"/"metrics" packages.
func NamedFromPkg(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// ObjectOf returns the object an identifier defines or uses.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
