// Package loader type-checks Go packages for the lint suite without any
// dependency outside the standard library. It shells out to `go list`
// for package metadata and build-constraint resolution, then parses and
// type-checks everything — the standard library included — from source.
// That trade (a second or two of CPU per run) is what lets hieras-lint
// work in the proxy-less build container where neither x/tools nor
// pre-compiled export data is available.
//
// CGO_ENABLED=0 is forced so every listed package has a pure-Go file
// set; dependency packages are checked with IgnoreFuncBodies, target
// packages get full bodies, types.Info and their in-package test files.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one analysis unit: a package's syntax (including its
// in-package _test.go files when it is a target) plus type information.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program is a loaded set of analysis units sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir            string
	ImportPath     string
	ForTest        string
	Standard       bool
	GoFiles        []string
	CgoFiles       []string
	TestGoFiles    []string
	XTestGoFiles   []string
	Imports        []string
	TestImports    []string
	XTestImports   []string
	Module         *struct{ Path string }
	DepsErrors     []*listErr
	Error          *listErr
	IgnoredGoFiles []string
}

type listErr struct{ Err string }

func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// world owns the file set and the growing map of type-checked packages.
type world struct {
	mu      sync.Mutex
	fset    *token.FileSet
	dir     string
	byPath  map[string]*listPkg
	checked map[string]*types.Package
}

func newWorld(dir string) *world {
	return &world{
		fset:    token.NewFileSet(),
		dir:     dir,
		byPath:  make(map[string]*listPkg),
		checked: map[string]*types.Package{"unsafe": types.Unsafe},
	}
}

// Import serves already-checked packages to go/types, mapping stdlib
// imports of golang.org/x/... onto their GOROOT-vendored copies.
func (w *world) Import(path string) (*types.Package, error) {
	if p, ok := w.checked[path]; ok {
		return p, nil
	}
	if p, ok := w.checked["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("loader: package %q not loaded", path)
}

func (w *world) parse(lp *listPkg, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(w.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package from the given files. Dependency
// packages skip function bodies; units wanting analysis pass info.
func (w *world) check(path string, lp *listPkg, files []*ast.File, full bool, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer:         w,
		IgnoreFuncBodies: !full,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, w.fset, files, info)
	if firstErr != nil && !lp.Standard {
		// Standard-library source occasionally trips a from-source
		// corner (e.g. GOROOT-vendored asm shims); those packages are
		// dependencies only, so a partial result is fine. Errors in the
		// module under analysis are not.
		return pkg, fmt.Errorf("loader: type-checking %s: %v", path, firstErr)
	}
	return pkg, nil
}

// ensure loads (listing if necessary) the dependency closure of path
// and type-checks it bottom-up, bodies ignored.
func (w *world) ensure(path string) error {
	if _, ok := w.checked[path]; ok {
		return nil
	}
	if _, ok := w.byPath[path]; !ok {
		deps, err := goList(w.dir, "-deps", path)
		if err != nil {
			return err
		}
		for _, d := range deps {
			if w.byPath[d.ImportPath] == nil {
				w.byPath[d.ImportPath] = d
			}
		}
	}
	return w.checkDeps(path, make(map[string]bool))
}

func (w *world) checkDeps(path string, visiting map[string]bool) error {
	if _, ok := w.checked[path]; ok || path == "C" {
		return nil
	}
	if visiting[path] {
		return fmt.Errorf("loader: import cycle through %s", path)
	}
	visiting[path] = true
	lp := w.byPath[path]
	if lp == nil {
		if alt := w.byPath["vendor/"+path]; alt != nil {
			lp, path = alt, "vendor/"+path
		} else {
			return fmt.Errorf("loader: no metadata for %s", path)
		}
	}
	imps := append([]string(nil), lp.Imports...)
	sort.Strings(imps)
	for _, imp := range imps {
		if err := w.checkDeps(imp, visiting); err != nil {
			return err
		}
	}
	files, err := w.parse(lp, lp.GoFiles)
	if err != nil {
		return err
	}
	pkg, err := w.check(path, lp, files, false, nil)
	if err != nil {
		return err
	}
	w.checked[path] = pkg
	return nil
}

// NewInfo returns a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load lists patterns in dir and returns one analysis unit per matched
// package (with in-package test files merged in) plus one extra unit
// per external _test package.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	w := newWorld(dir)
	// One listing gives targets and the full dependency closure,
	// test imports included (-test also emits synthetic *.test and
	// "pkg [pkg.test]" entries, which are skipped: the plain entries
	// already carry everything the type-checker needs).
	all, err := goList(dir, append([]string{"-deps", "-test"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range all {
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if w.byPath[p.ImportPath] == nil {
			w.byPath[p.ImportPath] = p
		}
	}
	// Pass 1: bodies-ignored bottom-up check of every package, which
	// gives later passes a complete, cycle-free import universe.
	for _, p := range targets {
		if err := w.checkDeps(p.ImportPath, make(map[string]bool)); err != nil {
			return nil, err
		}
	}
	prog := &Program{Fset: w.fset}
	// Pass 2: each target re-checked in full with its in-package test
	// files — the unit analyzers see. External test packages become
	// their own units, importing the augmented target so export_test.go
	// helpers resolve.
	for _, lp := range targets {
		sort.Strings(lp.TestImports)
		for _, imp := range lp.TestImports {
			if err := w.ensure(imp); err != nil {
				return nil, err
			}
		}
		files, err := w.parse(lp, append(append([]string(nil), lp.GoFiles...), lp.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		info := NewInfo()
		pkg, err := w.check(lp.ImportPath, lp, files, true, info)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, &Package{Path: lp.ImportPath, Files: files, Pkg: pkg, Info: info})
		if len(lp.XTestGoFiles) == 0 {
			continue
		}
		saved := w.checked[lp.ImportPath]
		w.checked[lp.ImportPath] = pkg // xtest sees the augmented package
		sort.Strings(lp.XTestImports)
		for _, imp := range lp.XTestImports {
			if ensureErr := w.ensure(imp); ensureErr != nil {
				return nil, ensureErr
			}
		}
		xfiles, err := w.parse(lp, lp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		xinfo := NewInfo()
		xpkg, err := w.check(lp.ImportPath+"_test", lp, xfiles, true, xinfo)
		if saved != nil {
			w.checked[lp.ImportPath] = saved
		} else {
			delete(w.checked, lp.ImportPath)
		}
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, &Package{Path: lp.ImportPath + "_test", Files: xfiles, Pkg: xpkg, Info: xinfo})
	}
	return prog, nil
}

// ModuleRoot locates the enclosing module's directory, so callers can
// invoke Load from any working directory inside the repo.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("loader: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}

// StdImporter type-checks standard-library packages on demand (closure
// included) and caches them for the life of the process. Fixture tests
// share one instance so each test binary pays the stdlib cost once.
type StdImporter struct {
	w *world
}

// NewStdImporter returns an importer rooted at dir (any directory works
// for stdlib paths; tests pass the fixture root).
func NewStdImporter(dir string) *StdImporter {
	return &StdImporter{w: newWorld(dir)}
}

// Fset exposes the importer's file set so fixture files can be parsed
// into the same set their dependencies use.
func (s *StdImporter) Fset() *token.FileSet { return s.w.fset }

// Import loads path (listing and type-checking its closure if needed).
func (s *StdImporter) Import(path string) (*types.Package, error) {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	if err := s.w.ensure(path); err != nil {
		return nil, err
	}
	return s.w.Import(path)
}

// Add registers an externally checked package (a fixture dependency) so
// later fixture packages can import it.
func (s *StdImporter) Add(path string, pkg *types.Package) {
	s.w.mu.Lock()
	defer s.w.mu.Unlock()
	s.w.checked[path] = pkg
}

// CheckFiles type-checks an ad-hoc file set as package path, resolving
// imports through the importer (stdlib plus anything Add-ed).
func (s *StdImporter) CheckFiles(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return s.Import(p) }),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, s.w.fset, files, info)
	if firstErr != nil {
		return pkg, fmt.Errorf("loader: type-checking %s: %v", path, firstErr)
	}
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
