package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// A file excluded by a build constraint must be invisible to the loader:
// `go list` routes it to IgnoredGoFiles, and the loader must not parse
// or type-check it. The excluded file here calls an undefined symbol, so
// any leak of it into the unit turns this test red.
func TestLoadSkipsBuildTagExcludedFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tagmod\n\ngo 1.22\n",
		"good.go": "package tagmod\n\nfunc Good() int { return 1 }\n",
		"excluded.go": `//go:build neverbuildme

package tagmod

func Broken() { undefinedSymbol() }
`,
	})
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("got %d units, want 1", len(prog.Pkgs))
	}
	for _, f := range prog.Pkgs[0].Files {
		name := filepath.Base(prog.Fset.Position(f.Pos()).Filename)
		if name != "good.go" {
			t.Errorf("unit contains %s; build-tag-excluded files must stay out", name)
		}
	}
}

// Broken target code must surface as a positioned error from Load, never
// a panic and never a silent partial unit.
func TestLoadReportsBrokenTargets(t *testing.T) {
	t.Run("type error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module typerr\n\ngo 1.22\n",
			"bad.go": "package typerr\n\nvar X int = \"not an int\"\n",
		})
		_, err := Load(dir, "./...")
		if err == nil {
			t.Fatal("load succeeded; want a type-check error")
		}
		//lint:allow wraperr the loader's error text is its user-facing diagnostic; this test pins its shape
		if !strings.Contains(err.Error(), "type-checking") || !strings.Contains(err.Error(), "bad.go") {
			t.Errorf("error %q should name the type-check phase and the offending file", err)
		}
	})
	t.Run("syntax error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": "module synerr\n\ngo 1.22\n",
			"bad.go": "package synerr\n\nfunc Broken( {\n",
		})
		_, err := Load(dir, "./...")
		if err == nil {
			t.Fatal("load succeeded; want a parse error")
		}
		//lint:allow wraperr the loader's error text is its user-facing diagnostic; this test pins its shape
		if !strings.Contains(err.Error(), "bad.go") {
			t.Errorf("error %q should name the offending file", err)
		}
	})
}

// GOROOT-vendored dependencies are listed under a vendor/ import path
// while their source still says golang.org/x/...; both the dependency
// walk and the go/types importer must bridge that gap. This drives the
// world directly with the real vendored copy of x/net's dnsmessage.
func TestVendoredImportFallback(t *testing.T) {
	const plain = "golang.org/x/net/dns/dnsmessage"
	dir := t.TempDir()
	w := newWorld(dir)
	deps, err := goList(dir, "-deps", "vendor/"+plain)
	if err != nil {
		t.Fatalf("list vendored package: %v", err)
	}
	for _, d := range deps {
		if w.byPath[d.ImportPath] == nil {
			w.byPath[d.ImportPath] = d
		}
	}
	// The un-prefixed path has no metadata of its own; checkDeps must
	// fall back to the vendor/ entry rather than erroring out.
	if depErr := w.checkDeps(plain, make(map[string]bool)); depErr != nil {
		t.Fatalf("checkDeps via vendor fallback: %v", depErr)
	}
	// And the importer must serve the vendored result when go/types asks
	// for the path as written in source.
	pkg, err := w.Import(plain)
	if err != nil {
		t.Fatalf("Import via vendor fallback: %v", err)
	}
	if got := pkg.Path(); got != "vendor/"+plain {
		t.Errorf("imported package path = %q, want %q", got, "vendor/"+plain)
	}
}
