// Package lint assembles the repo's analyzer suite and drives it over
// loaded packages. The individual contracts live in their own
// subpackages (nodeterm, lockrpc, retrysafe, metrichygiene, wraperr,
// goroutinelife, ctxflow, lockorder, chandisc, stock); this package
// owns the roster, the //lint:allow suppression layer, and
// deterministic diagnostic ordering. cmd/hieras-lint is a thin CLI
// over Run.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/chandisc"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/goroutinelife"
	"repro/internal/lint/loader"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/lockrpc"
	"repro/internal/lint/metrichygiene"
	"repro/internal/lint/nodeterm"
	"repro/internal/lint/retrysafe"
	"repro/internal/lint/stock"
	"repro/internal/lint/wraperr"
)

// Analyzers returns the full suite in reporting order: the
// repo-contract passes first (the four concurrency-contract analyzers
// after the original five), then the stock-style safety passes.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterm.Analyzer,
		lockrpc.Analyzer,
		retrysafe.Analyzer,
		metrichygiene.Analyzer,
		wraperr.Analyzer,
		goroutinelife.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
		chandisc.Analyzer,
		stock.Nilness,
		stock.LostCancel,
		stock.CopyLocks,
		stock.Shadow,
	}
}

// Finding is one diagnostic with its position resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// rawRun executes every analyzer over prog — per-package analyzers on
// each package, program-level analyzers once over all of them — and
// returns the unfiltered diagnostics grouped per package plus the
// program-level ones.
func rawRun(prog *loader.Program, analyzers []*analysis.Analyzer) (perPkg [][]analysis.Diagnostic, programDiags []analysis.Diagnostic, err error) {
	perPkg = make([][]analysis.Diagnostic, len(prog.Pkgs))
	var programAnalyzers []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
		}
	}
	for i, pkg := range prog.Pkgs {
		i := i
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { perPkg[i] = append(perPkg[i], d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	if len(programAnalyzers) > 0 {
		units := make([]*analysis.Unit, len(prog.Pkgs))
		for i, pkg := range prog.Pkgs {
			units[i] = &analysis.Unit{Path: pkg.Path, Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.Info}
		}
		for _, a := range programAnalyzers {
			pass := &analysis.ProgramPass{
				Analyzer: a,
				Fset:     prog.Fset,
				Units:    units,
				Report:   func(d analysis.Diagnostic) { programDiags = append(programDiags, d) },
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, nil, fmt.Errorf("%s (program pass): %v", a.Name, err)
			}
		}
	}
	return perPkg, programDiags, nil
}

// Run executes every analyzer over every package of prog, applies the
// //lint:allow suppression layer (malformed allows become findings
// themselves), and returns the surviving findings sorted by position.
func Run(prog *loader.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	perPkg, programDiags, err := rawRun(prog, analyzers)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	add := func(d analysis.Diagnostic) {
		findings = append(findings, Finding{
			Pos:      prog.Fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for i, pkg := range prog.Pkgs {
		sup := analysis.NewSuppressor(prog.Fset, pkg.Files, known)
		for _, d := range perPkg[i] {
			if !sup.Suppressed(prog.Fset, d) {
				add(d)
			}
		}
		for _, d := range sup.Malformed() {
			add(d)
		}
	}
	if len(programDiags) > 0 {
		// One suppressor over every file: the keys carry the filename, so
		// an allow only ever matches findings in its own file. Malformed
		// directives were already reported by the per-package suppressors.
		sup := analysis.NewSuppressor(prog.Fset, allFiles(prog), known)
		for _, d := range programDiags {
			if !sup.Suppressed(prog.Fset, d) {
				add(d)
			}
		}
	}
	sortFindings(findings)
	return findings, nil
}

// StaleAllow is a //lint:allow directive whose analyzer no longer
// reports anything at the site it suppresses.
type StaleAllow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

func (s StaleAllow) String() string {
	return fmt.Sprintf("%s:%d:%d: stale //lint:allow %s (%s): analyzer no longer fires here",
		s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Analyzer, s.Reason)
}

// StaleAllows runs the suite with suppression disabled and returns the
// well-formed allow directives that no diagnostic of their analyzer
// lands on (same file, the directive's line or the line below) — the
// suppressions that outlived the violation they excused. Malformed
// directives are not reported here; the normal Run already flags them.
func StaleAllows(prog *loader.Program, analyzers []*analysis.Analyzer) ([]StaleAllow, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	perPkg, programDiags, err := rawRun(prog, analyzers)
	if err != nil {
		return nil, err
	}
	// hit is keyed by analyzer\x00file\x00line of every raw diagnostic.
	hit := map[string]bool{}
	mark := func(d analysis.Diagnostic) {
		pos := prog.Fset.Position(d.Pos)
		hit[fmt.Sprintf("%s\x00%s\x00%d", d.Analyzer, pos.Filename, pos.Line)] = true
	}
	for _, diags := range perPkg {
		for _, d := range diags {
			mark(d)
		}
	}
	for _, d := range programDiags {
		mark(d)
	}
	var stale []StaleAllow
	seen := map[token.Pos]bool{} // in-package test files appear in two units
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, a := range analysis.ParseAllows(prog.Fset, f) {
				if a.Analyzer == "" || !known[a.Analyzer] || a.Reason == "" || seen[a.Pos] {
					continue
				}
				seen[a.Pos] = true
				if hit[fmt.Sprintf("%s\x00%s\x00%d", a.Analyzer, a.File, a.Line)] ||
					hit[fmt.Sprintf("%s\x00%s\x00%d", a.Analyzer, a.File, a.Line+1)] {
					continue
				}
				stale = append(stale, StaleAllow{
					Pos:      prog.Fset.Position(a.Pos),
					Analyzer: a.Analyzer,
					Reason:   a.Reason,
				})
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return stale, nil
}

func allFiles(prog *loader.Program) []*ast.File {
	var out []*ast.File
	for _, pkg := range prog.Pkgs {
		out = append(out, pkg.Files...)
	}
	return out
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
