// Package lint assembles the repo's analyzer suite and drives it over
// loaded packages. The individual contracts live in their own
// subpackages (nodeterm, lockrpc, retrysafe, metrichygiene, wraperr,
// stock); this package owns the roster, the //lint:allow suppression
// layer, and deterministic diagnostic ordering. cmd/hieras-lint is a
// thin CLI over Run.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
	"repro/internal/lint/lockrpc"
	"repro/internal/lint/metrichygiene"
	"repro/internal/lint/nodeterm"
	"repro/internal/lint/retrysafe"
	"repro/internal/lint/stock"
	"repro/internal/lint/wraperr"
)

// Analyzers returns the full suite in reporting order: the five
// repo-contract passes first, then the stock-style safety passes.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterm.Analyzer,
		lockrpc.Analyzer,
		retrysafe.Analyzer,
		metrichygiene.Analyzer,
		wraperr.Analyzer,
		stock.Nilness,
		stock.LostCancel,
		stock.CopyLocks,
		stock.Shadow,
	}
}

// Finding is one diagnostic with its position resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run executes every analyzer over every package of prog, applies the
// //lint:allow suppression layer (malformed allows become findings
// themselves), and returns the surviving findings sorted by position.
func Run(prog *loader.Program, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		sup := analysis.NewSuppressor(prog.Fset, pkg.Files, known)
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
		for _, d := range diags {
			if sup.Suppressed(prog.Fset, d) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      prog.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, d := range sup.Malformed() {
			findings = append(findings, Finding{
				Pos:      prog.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
