package glife

import (
	"context"
	"sync"
	"time"

	"gdep"
)

func work() {}

// orphan: spins forever with no owner.
func Orphan() {
	go func() { // want `orphan goroutine`
		for {
			work()
		}
	}()
}

// A WaitGroup ties the goroutine to its spawner.
func WaitGroupTied() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// A ctx.Done receive ties the goroutine to its caller's cancellation.
func CtxTied(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Draining a channel until the owner closes it is a lifecycle.
func RangeTied(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

type conn struct{}

func (c *conn) Read(p []byte) (int, error) { return 0, nil }
func (c *conn) Close() error               { return nil }

// A blocking read on a closable endpoint: Close unblocks the loop.
func EndpointTied(c *conn) {
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
}

func spin() {
	for {
		work()
	}
}

func drain(ch chan int) {
	for range ch {
	}
}

// Evidence is searched transitively through same-package callees...
func NamedGood(ch chan int) {
	go drain(ch)
}

// ...and its absence in the whole call tree is an orphan.
func NamedOrphan() {
	go spin() // want `orphan goroutine`
}

// A nested goroutine's lifecycle does not vouch for its spawner.
func NestedDoesNotVouch(ch chan int) {
	go func() { // want `orphan goroutine`
		go drain(ch)
		for {
			work()
		}
	}()
}

// Bodies outside the package cannot be verified.
func CrossPackage() {
	go gdep.Run() // want `outside this package`
}

// Function values cannot be verified either.
func FuncValue(fn func()) {
	go fn() // want `function value`
}

// An allow with a reason suppresses the finding.
func Allowed(fn func()) {
	go fn() //lint:allow goroutinelife the callback contract requires callers to pass a self-terminating fn
}

func Tick() {
	go func() {
		for range time.Tick(time.Second) { // want `time\.Tick leaks its ticker`
		}
	}()
}

func TickerNoStop(ctx context.Context) {
	t := time.NewTicker(time.Second) // want `NewTicker without a Stop`
	go func() {
		for {
			select {
			case <-t.C:
				work()
			case <-ctx.Done():
				return
			}
		}
	}()
}

func TickerStopped(ctx context.Context) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			work()
		case <-ctx.Done():
			return
		}
	}
}
