// Package gdep is a dependency fixture: its bodies are invisible to a
// per-package goroutinelife pass over glife.
package gdep

// Run loops forever; glife cannot see that.
func Run() {
	for {
	}
}
