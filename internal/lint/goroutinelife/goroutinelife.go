// Package goroutinelife enforces the goroutine ownership contract:
// library code may only spawn a goroutine whose lifetime is visibly
// tied to something that ends it. A goroutine with no owner outlives
// Close, keeps its captures reachable forever, and turns every test
// process into a slow leak — exactly the failure class -race cannot
// see.
//
// Accepted lifecycle evidence, searched in the spawned body and
// transitively through its same-package callees:
//
//   - a sync.WaitGroup.Done call (the spawner Waits for it),
//   - a receive from ctx.Done(), a stop/close channel, or any
//     select/receive/range-over-channel (the owner signals it),
//   - a blocking accept/read on a closable endpoint — Accept/Read*
//     methods on a value whose type has a Close method, or
//     io.ReadFull/ReadAll/Copy — so the owning struct's Close unblocks
//     it.
//
// A go statement whose body shows none of these is reported, as is a
// spawn whose body the analyzer cannot see (a function value or a
// cross-package call): if the lifecycle is real, name it where the
// goroutine starts or carry a reasoned //lint:allow.
//
// The analyzer also flags time.Tick (its ticker can never be stopped)
// and time.NewTicker in functions that never call Stop. Package main
// and _test.go files are exempt: commands run until the process exits,
// and tests have the runtime leak gate (internal/lint/leakcheck)
// watching them instead.
package goroutinelife

import (
	"go/ast"
	"go/types"
	"path"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the goroutinelife pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "every goroutine in library code must be tied to a lifecycle (WaitGroup, ctx/stop channel, or closable endpoint)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	s := &scanner{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					s.decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				s.checkGo(n)
			case *ast.CallExpr:
				s.checkTicker(n)
			case *ast.FuncDecl:
				if n.Body != nil {
					s.checkNewTicker(n)
				}
			}
			return true
		})
	}
	return nil
}

func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(path.Base(pass.Fset.Position(f.Pos()).Filename), "_test.go")
}

type scanner struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// checkGo verifies one go statement's lifecycle evidence.
func (s *scanner) checkGo(g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := analysis.CalleeFunc(s.pass.TypesInfo, g.Call); fn != nil {
			if fd, ok := s.decls[fn]; ok {
				body = fd.Body
			} else {
				s.pass.Reportf(g.Pos(),
					"goroutine body %s is outside this package; the analyzer cannot verify its lifecycle — wrap it in a local function that ties it to a WaitGroup, ctx/stop channel, or owning Close",
					fn.Name())
				return
			}
		} else {
			s.pass.Reportf(g.Pos(),
				"goroutine spawns a function value; the analyzer cannot verify its lifecycle — tie it to a WaitGroup, ctx/stop channel, or owning Close at the spawn site")
			return
		}
	}
	if !s.hasLifecycle(body, map[*ast.BlockStmt]bool{}) {
		s.pass.Reportf(g.Pos(),
			"orphan goroutine: no WaitGroup.Done, no ctx.Done()/stop-channel receive, and no blocking read on a closable endpoint; nothing ends this goroutine when its owner shuts down")
	}
}

// hasLifecycle searches body (and, transitively, same-package callees)
// for any accepted lifecycle evidence.
func (s *scanner) hasLifecycle(body *ast.BlockStmt, visited map[*ast.BlockStmt]bool) bool {
	if body == nil || visited[body] {
		return false
	}
	visited[body] = true
	found := false
	var callees []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine's lifecycle is its own (checked at its own
			// go statement); it neither keeps this one alive nor stops it.
			return false
		case *ast.UnaryExpr:
			// Any receive is a wait on a signal someone else controls:
			// <-ctx.Done(), <-stop, <-time.After in a timeout helper.
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := s.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true // drains until the owner closes the channel
				}
			}
		case *ast.CallExpr:
			if s.isEvidenceCall(n) {
				found = true
				return false
			}
			if fn := analysis.CalleeFunc(s.pass.TypesInfo, n); fn != nil {
				if fd, ok := s.decls[fn]; ok {
					callees = append(callees, fd.Body)
				}
			}
		}
		return true
	})
	if found {
		return true
	}
	for _, c := range callees {
		if s.hasLifecycle(c, visited) {
			return true
		}
	}
	return false
}

// isEvidenceCall recognizes calls that tie a goroutine to an owner:
// WaitGroup.Done, blocking reads on closable endpoints, and the io
// helpers that wrap them.
func (s *scanner) isEvidenceCall(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(s.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" {
		switch fn.Name() {
		case "ReadFull", "ReadAll", "Copy", "CopyN", "CopyBuffer":
			return true
		}
	}
	// A blocking accept/read method on a value whose type has a Close
	// method: the owner's Close unblocks (and so ends) the goroutine.
	switch fn.Name() {
	case "Accept", "Read", "ReadFrom", "ReadFull", "RecvFrom", "ReadMsg":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := s.pass.TypesInfo.Types[sel.X]; ok && hasCloseMethod(tv.Type) {
				return true
			}
		}
	}
	return false
}

// hasCloseMethod reports whether t's method set (pointer included)
// contains an exported Close.
func hasCloseMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if lookupMethod(ms, "Close") {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return lookupMethod(types.NewMethodSet(types.NewPointer(t)), "Close")
	}
	return false
}

func lookupMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// checkTicker flags time.Tick: the underlying ticker has no handle and
// can never be stopped.
func (s *scanner) checkTicker(call *ast.CallExpr) {
	if analysis.IsPkgCall(s.pass.TypesInfo, call, "time", "Tick") {
		s.pass.Reportf(call.Pos(),
			"time.Tick leaks its ticker (no handle to Stop); use time.NewTicker and defer Stop")
	}
}

// checkNewTicker flags time.NewTicker in functions that never call
// Stop on a ticker.
func (s *scanner) checkNewTicker(fd *ast.FuncDecl) {
	var newTickers []*ast.CallExpr
	stops := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsPkgCall(s.pass.TypesInfo, call, "time", "NewTicker") {
			newTickers = append(newTickers, call)
			return true
		}
		if fn := analysis.CalleeFunc(s.pass.TypesInfo, call); fn != nil && fn.Name() == "Stop" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := s.pass.TypesInfo.Types[sel.X]; ok && analysis.NamedFromPkg(tv.Type, "time", "Ticker") {
					stops = true
				}
			}
		}
		return true
	})
	if stops {
		return
	}
	for _, call := range newTickers {
		s.pass.Reportf(call.Pos(),
			"time.NewTicker without a Stop in %s; an unstopped ticker leaks its goroutine and channel", fd.Name.Name)
	}
}
