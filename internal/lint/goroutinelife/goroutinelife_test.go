package goroutinelife

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestGoroutineLifecycle(t *testing.T) {
	linttest.Run(t, "testdata/src", "glife", Analyzer)
}
