// Package linttest runs lint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files
// live under testdata/src/<pkg>/ and annotate the lines expected to be
// flagged with
//
//	// want "regexp"
//
// comments (several quoted regexps may follow one want). Imports are
// resolved against sibling fixture directories first — so a fixture can
// ship a fake "wire" or "metrics" package — then against the standard
// library, type-checked from source.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Fixture is one loaded fixture package ready for analysis.
type Fixture struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// root caches one testdata/src tree: a shared stdlib importer plus the
// fixture packages already checked against it.
type root struct {
	imp      *loader.StdImporter
	fixtures map[string]*Fixture
}

var (
	rootsMu sync.Mutex
	roots   = map[string]*root{}
)

func rootFor(srcRoot string) *root {
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		abs = srcRoot
	}
	rootsMu.Lock()
	defer rootsMu.Unlock()
	if r, ok := roots[abs]; ok {
		return r
	}
	r := &root{imp: loader.NewStdImporter(abs), fixtures: map[string]*Fixture{}}
	roots[abs] = r
	return r
}

// load parses and type-checks srcRoot/<pkg>, recursively loading
// fixture imports that exist as sibling directories.
func (r *root) load(t *testing.T, srcRoot, pkg string, loading map[string]bool) *Fixture {
	t.Helper()
	if fix, ok := r.fixtures[pkg]; ok {
		return fix
	}
	if loading[pkg] {
		t.Fatalf("fixture import cycle through %q", pkg)
	}
	loading[pkg] = true
	defer delete(loading, pkg)

	dir := filepath.Join(srcRoot, pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkg, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, parseErr := parser.ParseFile(r.imp.Fset(), filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if parseErr != nil {
			t.Fatalf("fixture %s: %v", pkg, parseErr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s: no Go files in %s", pkg, dir)
	}
	// Sibling fixture imports are checked first and registered with the
	// importer, shadowing any same-named real package.
	for _, f := range files {
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			if st, statErr := os.Stat(filepath.Join(srcRoot, path)); statErr == nil && st.IsDir() {
				sub := r.load(t, srcRoot, path, loading)
				r.imp.Add(path, sub.Pkg)
			}
		}
	}
	info := loader.NewInfo()
	tp, err := r.imp.CheckFiles(pkg, files, info)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkg, err)
	}
	fix := &Fixture{Fset: r.imp.Fset(), Files: files, Pkg: tp, Info: info}
	r.fixtures[pkg] = fix
	return fix
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// analyze applies the analyzer with //lint:allow suppression, exactly
// as the real driver does, returning findings sorted by position. The
// fixtures are presented as one unit each; a program-level analyzer
// (RunProgram) sees all of them in a single pass.
func analyze(t *testing.T, fixes []*Fixture, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := fixes[0].Fset
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) {
		d.Analyzer = a.Name
		diags = append(diags, d)
	}
	switch {
	case a.RunProgram != nil:
		units := make([]*analysis.Unit, len(fixes))
		for i, fix := range fixes {
			units[i] = &analysis.Unit{Path: fix.Pkg.Path(), Files: fix.Files, Pkg: fix.Pkg, TypesInfo: fix.Info}
		}
		pass := &analysis.ProgramPass{Analyzer: a, Fset: fset, Units: units, Report: report}
		if err := a.RunProgram(pass); err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
	default:
		for _, fix := range fixes {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     fix.Files,
				Pkg:       fix.Pkg,
				TypesInfo: fix.Info,
				Report:    report,
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s: %v", a.Name, err)
			}
		}
	}
	var files []*ast.File
	for _, fix := range fixes {
		files = append(files, fix.Files...)
	}
	sup := analysis.NewSuppressor(fset, files, map[string]bool{a.Name: true})
	kept := diags[:0]
	for _, d := range diags {
		if !sup.Suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.Malformed()...)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept
}

// Run loads srcRoot/<pkg>, applies the analyzer and diffs the resulting
// diagnostics against the fixture's want annotations.
func Run(t *testing.T, srcRoot, pkg string, a *analysis.Analyzer) {
	t.Helper()
	RunPkgs(t, srcRoot, []string{pkg}, a)
}

// RunPkgs loads several fixture packages and applies the analyzer to
// all of them together — for program-level analyzers whose findings
// only exist across package boundaries. Want annotations are honored in
// every listed package.
func RunPkgs(t *testing.T, srcRoot string, pkgs []string, a *analysis.Analyzer) {
	t.Helper()
	r := rootFor(srcRoot)
	fixes := make([]*Fixture, len(pkgs))
	for i, pkg := range pkgs {
		fixes[i] = r.load(t, srcRoot, pkg, map[string]bool{})
	}
	diags := analyze(t, fixes, a)
	fset := fixes[0].Fset
	var files []*ast.File
	for _, fix := range fixes {
		files = append(files, fix.Files...)
	}
	wants := parseWants(t, fset, files)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// Diagnostics returns the suppression-filtered findings for a fixture,
// for tests that assert on the list directly.
func Diagnostics(t *testing.T, srcRoot, pkg string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	r := rootFor(srcRoot)
	fix := r.load(t, srcRoot, pkg, map[string]bool{})
	return analyze(t, []*Fixture{fix}, a)
}
