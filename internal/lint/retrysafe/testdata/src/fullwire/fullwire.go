// Fixture: every constant classified, including explicit false cases —
// nothing to report.
package wire

type MsgType uint8

const (
	TPing MsgType = iota + 1
	TPut
	TNotify
)

func Idempotent(t MsgType) bool {
	switch t {
	case TPing:
		return true
	case TPut, TNotify:
		return false
	}
	return false
}
