// Fixture: a wire-shaped package with one constant the Idempotent
// classifier forgot.
package wire

type MsgType uint8

const (
	TPing MsgType = iota + 1
	TPut
	TBackfill // want `wire\.MsgType constant TBackfill is not classified in Idempotent`
)

func Idempotent(t MsgType) bool {
	switch t {
	case TPing:
		return true
	case TPut:
		return false
	}
	return false
}
