// Fixture: MsgType constants with no Idempotent classifier at all.
package wire

type MsgType uint8

const TPing MsgType = 1 // want `declares MsgType constants but no Idempotent`

const TPut MsgType = 2
