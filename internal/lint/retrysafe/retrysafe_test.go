package retrysafe

import (
	"testing"

	"repro/internal/lint/linttest"
)

func TestUnclassifiedConstant(t *testing.T) {
	linttest.Run(t, "testdata/src", "wirelint", Analyzer)
}

func TestMissingClassifier(t *testing.T) {
	linttest.Run(t, "testdata/src", "noclassifier", Analyzer)
}

func TestFullyClassified(t *testing.T) {
	linttest.Run(t, "testdata/src", "fullwire", Analyzer)
}
