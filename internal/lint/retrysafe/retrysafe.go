// Package retrysafe enforces the retry-safety contract: every wire
// MsgType constant must be explicitly classified by the package's
// Idempotent function. The Retrier consults Idempotent to decide
// whether an operation whose request bytes may have reached the peer
// can be replayed; an operation missing from the switch silently falls
// through to "not idempotent", which reads like a decision but is
// actually an omission. This analyzer turns that omission into a lint
// failure: adding a MsgType without extending Idempotent (to an
// explicit true OR false case) does not compile out of the gate.
//
// The pass runs on any package named "wire" that declares a MsgType
// type — the real repro/internal/wire and test fixtures alike.
package retrysafe

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the retrysafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "retrysafe",
	Doc:  "require every wire.MsgType to be explicitly classified by Idempotent",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "wire" {
		return nil
	}
	msgType, _ := pass.Pkg.Scope().Lookup("MsgType").(*types.TypeName)
	if msgType == nil {
		return nil
	}
	consts := msgTypeConsts(pass.Pkg, msgType)
	if len(consts) == 0 {
		return nil
	}
	idem := findIdempotent(pass, msgType)
	if idem == nil {
		pass.Reportf(consts[0].Pos(),
			"package wire declares MsgType constants but no Idempotent(t MsgType) classifier; retry safety must be decided per operation")
		return nil
	}
	covered := coveredConsts(pass, idem)
	for _, c := range consts {
		if !covered[c] {
			pass.Reportf(c.Pos(),
				"wire.MsgType constant %s is not classified in Idempotent; add it to an explicit case (true or false) so retry safety is a decision, not a default",
				c.Name())
		}
	}
	return nil
}

// msgTypeConsts returns the package-level constants of type MsgType, in
// declaration order.
func msgTypeConsts(pkg *types.Package, msgType *types.TypeName) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Type() == msgType.Type() {
			out = append(out, c)
		}
	}
	// Scope names are sorted alphabetically; order by declaration
	// position so the "first constant" report is stable and natural.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos() < out[j-1].Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// findIdempotent locates func Idempotent(t MsgType) bool in the pass's
// files and returns its body.
func findIdempotent(pass *analysis.Pass, msgType *types.TypeName) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != "Idempotent" || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 1 && sig.Params().At(0).Type() == msgType.Type() {
				return fd
			}
		}
	}
	return nil
}

// coveredConsts collects every MsgType constant referenced in a case
// clause anywhere inside fn's body.
func coveredConsts(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.Const]bool {
	covered := map[*types.Const]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			id, ok := ast.Unparen(expr).(*ast.Ident)
			if !ok {
				continue
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				covered[c] = true
			}
		}
		return true
	})
	return covered
}
