package lint_test

import (
	"os"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// TestRepoIsLintClean is the meta-test behind the CI gate: the full
// analyzer suite, run over this module exactly as cmd/hieras-lint runs
// it, must report zero findings. Any fixture-only regression in an
// analyzer shows up here as a false positive against real code, and any
// new contract violation in the repo shows up as a true positive —
// either way the build stays red until the suite and the code agree.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := loader.ModuleRoot(cwd)
	if err != nil {
		t.Fatalf("locate module root: %v", err)
	}
	prog, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	findings, err := lint.Run(prog, lint.Analyzers())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); fix the code or add a //lint:allow <analyzer> <reason> with justification", len(findings))
	}
}
