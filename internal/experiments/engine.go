package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Pool is the parallel batch query engine: it fans numbered blocks of
// work across a bounded set of goroutines and commits each block's result
// in strict block order, so a merge performed inside commit is
// byte-identical no matter how many workers ran — the property every
// deterministic experiment in this package relies on.
//
// Workers claim blocks from an atomic cursor (work stealing, so an
// expensive block never idles the rest of the pool), and whichever worker
// fills the gap at the commit frontier drains it under a lock. Commit
// callbacks therefore run serialized and in ascending block order, which
// also gives streaming consumers (progress reporting) a consistent
// prefix of the final result at every callback.
type Pool struct {
	workers int
	m       *poolMetrics
}

type poolMetrics struct {
	queueDepth   *metrics.Gauge
	workerBlocks *metrics.CounterVec
	blockSeconds *metrics.Histogram
	runs         *metrics.Counter
}

// NewPool returns a pool with the given worker bound; workers <= 0 uses
// all CPUs. The pool is stateless between Run calls and may be reused.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Instrument registers the pool's gauges and counters on reg:
//
//	pool_queue_depth            blocks not yet claimed by a worker
//	pool_worker_blocks_total    completed blocks by worker (throughput)
//	pool_block_seconds          block execution time histogram
//	pool_runs_total             Run invocations
//
// Call at most once per registry (names collide otherwise); several Run
// calls on one instrumented pool share the same metrics.
func (p *Pool) Instrument(reg *metrics.Registry) {
	p.m = &poolMetrics{
		queueDepth: reg.NewGauge("pool_queue_depth",
			"Batch-engine blocks not yet claimed by a worker."),
		workerBlocks: reg.NewCounterVec("pool_worker_blocks_total",
			"Batch-engine blocks completed, by worker.", "worker"),
		blockSeconds: reg.NewHistogram("pool_block_seconds",
			"Batch-engine block execution time in seconds.", metrics.DefLatencyBuckets),
		runs: reg.NewCounter("pool_runs_total",
			"Batch-engine Run invocations."),
	}
}

// Run executes blocks 0..blocks-1. exec(worker, block) runs concurrently
// on up to Workers goroutines; commit(block), when non-nil, runs
// serialized in ascending block order as soon as every earlier block has
// committed. The first exec/commit error (or ctx cancellation) stops the
// pool and is returned; blocks already committed stay committed.
func (p *Pool) Run(ctx context.Context, blocks int, exec func(worker, block int) error, commit func(block int) error) error {
	if blocks <= 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > blocks {
		workers = blocks
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		done     = make([]bool, blocks)
		frontier int
		firstErr error
	)
	if p.m != nil {
		p.m.runs.Inc()
		p.m.queueDepth.Set(float64(blocks))
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var throughput *metrics.Counter
			if p.m != nil {
				throughput = p.m.workerBlocks.With(strconv.Itoa(w))
			}
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks || ctx.Err() != nil {
					return
				}
				if p.m != nil {
					p.m.queueDepth.Set(float64(blocks - b - 1))
				}
				start := time.Now() //lint:allow nodeterm pool_block_seconds is report-only; commit order comes from the frontier, never from timing
				if err := exec(w, b); err != nil {
					fail(fmt.Errorf("experiments: block %d: %w", b, err))
					return
				}
				if p.m != nil {
					throughput.Inc()
					p.m.blockSeconds.Observe(time.Since(start).Seconds()) //lint:allow nodeterm pool_block_seconds is report-only; commit order comes from the frontier, never from timing
				}
				mu.Lock()
				done[b] = true
				for frontier < blocks && done[frontier] && firstErr == nil {
					f := frontier
					frontier++
					if commit != nil {
						if err := commit(f); err != nil {
							firstErr = fmt.Errorf("experiments: commit block %d: %w", f, err)
							cancel()
						}
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if p.m != nil {
		p.m.queueDepth.Set(0)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// blockSeed derives the deterministic RNG seed of one request block from
// the scenario seed (splitmix64 finalizer). Streams are split per block —
// not per worker — so the request content, and with it every merged
// summary, is invariant to the worker count.
func blockSeed(seed int64, block int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(block+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
