package experiments

import (
	"fmt"
	"sort"

	"repro/internal/binning"
	"repro/internal/id"
)

// ---------------------------------------------------------------------------
// Table 1: the distributed-binning example.
// ---------------------------------------------------------------------------

// Table1 reproduces the paper's Table 1: six sample nodes with measured
// latencies to four landmarks, quantised into the paper's three levels.
// (We use half-open level intervals; the paper's prose is ambiguous at
// exactly 20 and 100 ms — see the note row.)
func Table1() (*Table, error) {
	type sample struct {
		node string
		lats []float64
	}
	samples := []sample{
		{"A", []float64{25, 5, 30, 100}},
		{"B", []float64{40, 18, 12, 200}},
		{"C", []float64{100, 180, 5, 10}},
		{"D", []float64{160, 220, 8, 20}},
		{"E", []float64{45, 10, 100, 5}},
		{"F", []float64{20, 140, 50, 40}},
	}
	t := &Table{
		Title:  "Table 1: sample nodes in a two-layer HIERAS system, 4 landmarks",
		Header: []string{"node", "dist_L1", "dist_L2", "dist_L3", "dist_L4", "order"},
	}
	for _, s := range samples {
		order, err := binning.Order(s.lats, binning.DefaultThresholds)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.node,
			fmt.Sprintf("%gms", s.lats[0]), fmt.Sprintf("%gms", s.lats[1]),
			fmt.Sprintf("%gms", s.lats[2]), fmt.Sprintf("%gms", s.lats[3]),
			order)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Table 2: a node's layered finger tables.
// ---------------------------------------------------------------------------

// Table2 builds a small two-layer overlay and renders one node's highest
// finger-table entries in the paper's Table 2 format: the finger start,
// the layer-1 successor (chosen among all peers) and the layer-2 successor
// (chosen only within the node's own ring), each annotated with its ring.
func Table2(s Scenario) (*Table, error) {
	s = s.withDefaults()
	s.Depth = 2
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	// Pick a node whose layer-2 ring has several members so the contrast
	// between the two columns is visible.
	node := 0
	for i := 0; i < o.N(); i++ {
		if r, _ := o.RingOf(i, 2); r.Size() >= 4 {
			node = i
			break
		}
	}
	ring, member := o.RingOf(node, 2)
	t := &Table{
		Title: fmt.Sprintf("Table 2: node %s (ring %q) finger tables, highest 8 fingers",
			o.Node(node).ID.Short(), ring.Name),
		Header: []string{"start", "layer1_successor", "l1_ring", "layer2_successor", "l2_ring"},
	}
	for k := uint(id.Bits - 8); k < id.Bits; k++ {
		start := id.AddPow2(o.Node(node).ID, k)
		g := o.Global().Finger(node, k)
		l2 := ring.Table.Finger(member, k)
		l2global := int(ring.Global[l2])
		t.AddRow(
			start.Short(),
			o.Node(g).ID.Short(), o.Node(g).RingNames[0],
			o.Node(l2global).ID.Short(), o.Node(l2global).RingNames[0],
		)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Table 3: the ring table structure.
// ---------------------------------------------------------------------------

// Table3 renders the ring tables of a small overlay in the paper's Table 3
// layout.
func Table3(s Scenario) (*Table, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Table 3: ring tables (one per lower-layer P2P ring)",
		Header: []string{"ringid", "ringname", "largest", "second_largest",
			"smallest", "second_smallest", "stored_at"},
	}
	for layer := 2; layer <= o.Depth(); layer++ {
		names := make([]string, 0, len(o.Rings(layer)))
		for name := range o.Rings(layer) {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rt := o.RingTable(layer, name)
			t.AddRow(rt.RingID.Short(), fmt.Sprintf("%d:%s", layer, name),
				rt.Largest.Short(), rt.SecondLargest.Short(),
				rt.Smallest.Short(), rt.SecondSmallest.Short(),
				o.Node(rt.StoredAt).ID.Short())
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Ring population summary (supports §2.4 / §4.4 analysis).
// ---------------------------------------------------------------------------

// RingStatsTable summarises ring counts and sizes per layer for an
// overlay configuration.
func RingStatsTable(s Scenario) (*Table, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ring population: %d nodes, %d landmarks, depth %d", s.Nodes, s.Landmarks, s.Depth),
		Header: []string{"layer", "rings", "min_size", "mean_size", "max_size"},
	}
	for _, ls := range o.LayerStats() {
		t.AddRow(fmt.Sprint(ls.Layer), fmt.Sprint(ls.Rings),
			fmt.Sprint(ls.MinSize), f1(ls.MeanSize), fmt.Sprint(ls.MaxSize))
	}
	return t, nil
}
