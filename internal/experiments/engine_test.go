package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func TestPoolCommitsInOrder(t *testing.T) {
	p := NewPool(8)
	var order []int
	err := p.Run(context.Background(), 50,
		func(_, b int) error { return nil },
		func(b int) error { order = append(order, b); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 {
		t.Fatalf("committed %d blocks, want 50", len(order))
	}
	for i, b := range order {
		if b != i {
			t.Fatalf("commit order broken at %d: got block %d", i, b)
		}
	}
}

func TestPoolNilCommitAndZeroBlocks(t *testing.T) {
	p := NewPool(0) // defaults to GOMAXPROCS
	if p.Workers() < 1 {
		t.Fatal("worker bound must be positive")
	}
	var ran atomic.Int64
	if err := p.Run(context.Background(), 7, func(_, b int) error {
		ran.Add(1)
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 7 {
		t.Fatalf("ran %d blocks, want 7", ran.Load())
	}
	if err := p.Run(context.Background(), 0, nil, nil); err != nil {
		t.Fatalf("zero blocks: %v", err)
	}
}

func TestPoolExecErrorStops(t *testing.T) {
	p := NewPool(4)
	boom := errors.New("boom")
	err := p.Run(context.Background(), 100,
		func(_, b int) error {
			if b == 3 {
				return boom
			}
			return nil
		},
		func(b int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestPoolCommitErrorStops(t *testing.T) {
	p := NewPool(4)
	bad := errors.New("merge failed")
	committed := 0
	err := p.Run(context.Background(), 40,
		func(_, b int) error { return nil },
		func(b int) error {
			if b == 5 {
				return bad
			}
			committed++
			return nil
		})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want wrapped bad", err)
	}
	if committed != 5 {
		t.Fatalf("committed %d blocks before the failure, want 5", committed)
	}
}

func TestPoolCancellation(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	err := p.Run(ctx, 1000,
		func(_, b int) error {
			if b == 10 {
				cancel()
			}
			return nil
		},
		nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-cancelled context never runs a block.
	ran := false
	err = p.Run(ctx, 5, func(_, b int) error { ran = true; return nil }, nil)
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("pre-cancelled run: err=%v ran=%v", err, ran)
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := NewPool(3)
	p.Instrument(reg)
	if err := p.Run(context.Background(), 20, func(_, b int) error { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "pool_runs_total 1") {
		t.Errorf("missing pool_runs_total:\n%s", text)
	}
	if !strings.Contains(text, "pool_queue_depth 0") {
		t.Errorf("queue depth should drain to 0:\n%s", text)
	}
	if !strings.Contains(text, `pool_worker_blocks_total{worker="0"}`) {
		t.Errorf("missing per-worker throughput counter:\n%s", text)
	}
}

// TestCompareWorkerCountInvariance is the engine's headline guarantee:
// the same seed produces a byte-identical Comparison at any worker count.
func TestCompareWorkerCountInvariance(t *testing.T) {
	s := Scenario{Nodes: 120, Requests: 1500, Seed: 9, BlockSize: 128}
	o, err := BuildOverlay(s)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Comparison
	for _, workers := range []int{1, 3, 8} {
		sw := s
		sw.Workers = workers
		cmp, err := CompareOn(o, sw)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, cmp)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[0], got[i]
		if a.Hieras.Hops.Mean() != b.Hieras.Hops.Mean() ||
			a.Hieras.Latency.Mean() != b.Hieras.Latency.Mean() ||
			a.Chord.Hops.Mean() != b.Chord.Hops.Mean() ||
			a.Chord.Latency.Mean() != b.Chord.Latency.Mean() ||
			a.LowerHops.Mean() != b.LowerHops.Mean() ||
			a.TopLink.Mean() != b.TopLink.Mean() {
			t.Errorf("means differ between 1 and %d workers", b.Scenario.Workers)
		}
		if !reflect.DeepEqual(a.HopsHistHieras, b.HopsHistHieras) ||
			!reflect.DeepEqual(a.LatHistChord, b.LatHistChord) {
			t.Errorf("histograms differ between 1 and %d workers", b.Scenario.Workers)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if a.HierasLatQ.Quantile(q) != b.HierasLatQ.Quantile(q) {
				t.Errorf("latency q=%v differs between 1 and %d workers", q, b.Scenario.Workers)
			}
		}
	}
}

func TestCompareStreamProgress(t *testing.T) {
	s := Scenario{Nodes: 100, Requests: 700, Seed: 4, BlockSize: 100, Workers: 4}
	o, err := BuildOverlay(s)
	if err != nil {
		t.Fatal(err)
	}
	var seen []Progress
	cmp, err := CompareStream(context.Background(), o, s, func(p Progress) {
		seen = append(seen, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 {
		t.Fatalf("got %d progress callbacks, want 7 (one per block)", len(seen))
	}
	for i, p := range seen {
		if p.Requests != (i+1)*100 || p.Total != 700 {
			t.Fatalf("progress %d: %+v", i, p)
		}
	}
	last := seen[len(seen)-1]
	if last.HierasLatencyMs != cmp.Hieras.Latency.Mean() || last.LatencyRatio != cmp.LatencyRatio() {
		t.Error("final progress must equal the final comparison")
	}
}

func TestCompareContextCancellation(t *testing.T) {
	s := Scenario{Nodes: 100, Requests: 100000, Seed: 5, Workers: 2}
	o, err := BuildOverlay(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CompareStream(ctx, o, s, func(p Progress) {
			if p.Requests >= 2*DefaultBlockSize {
				cancel()
			}
		})
		done <- err
	}()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBlockSeedSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for b := 0; b < 1000; b++ {
		s := blockSeed(42, b)
		if seen[s] {
			t.Fatalf("block seed collision at block %d", b)
		}
		seen[s] = true
	}
	if blockSeed(1, 0) == blockSeed(2, 0) {
		t.Error("different scenario seeds must split differently")
	}
}

func ExamplePool() {
	// Square 6 numbers in parallel; commits still arrive in block order.
	p := NewPool(4)
	out := make([]int, 6)
	_ = p.Run(context.Background(), 6,
		func(_, b int) error { out[b] = b * b; return nil },
		func(b int) error { fmt.Println(b, out[b]); return nil })
	// Output:
	// 0 0
	// 1 1
	// 2 4
	// 3 9
	// 4 16
	// 5 25
}
