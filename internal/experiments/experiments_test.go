package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallBase keeps unit tests fast; benchmarks and cmd/hieras-bench run the
// larger sweeps.
func smallBase() Scenario {
	return Scenario{Nodes: 200, Requests: 500, Seed: 7}
}

func TestBuildOverlayModels(t *testing.T) {
	for _, model := range []string{ModelTS, ModelInet, ModelBRITE} {
		s := smallBase()
		s.Model = model
		o, err := BuildOverlay(s)
		if err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		if o.N() != s.Nodes {
			t.Errorf("model %s: N = %d", model, o.N())
		}
	}
	s := smallBase()
	s.Model = "nope"
	if _, err := BuildOverlay(s); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunComparisonInvariants(t *testing.T) {
	cmp, err := RunComparison(smallBase())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Hieras.Hops.N() != 500 || cmp.Chord.Hops.N() != 500 {
		t.Fatalf("request counts wrong: %d/%d", cmp.Hieras.Hops.N(), cmp.Chord.Hops.N())
	}
	if cmp.Hieras.Latency.Mean() <= 0 || cmp.Chord.Latency.Mean() <= 0 {
		t.Error("latencies must be positive")
	}
	if r := cmp.HopRatio(); r < 0.9 || r > 1.5 {
		t.Errorf("hop ratio %v implausible", r)
	}
	if r := cmp.LatencyRatio(); r >= 1 {
		t.Errorf("latency ratio %v: HIERAS should win on TS", r)
	}
	if s := cmp.LowerHopShare(); s <= 0 || s >= 1 {
		t.Errorf("lower hop share %v out of (0,1)", s)
	}
	if s := cmp.LowerLatencyShare(); s <= 0 || s >= 1 {
		t.Errorf("lower latency share %v out of (0,1)", s)
	}
	// Lower-ring links must be cheaper than top-ring links on average —
	// the mechanism behind the whole paper.
	if cmp.LowerLink.Mean() >= cmp.TopLink.Mean() {
		t.Errorf("lower link mean %.1f >= top link mean %.1f",
			cmp.LowerLink.Mean(), cmp.TopLink.Mean())
	}
	// Histograms account for every request.
	if cmp.HopsHistHieras.N() != 500 || cmp.LatHistChord.N() != 500 {
		t.Error("histogram populations wrong")
	}
}

func TestRunComparisonDeterministic(t *testing.T) {
	a, err := RunComparison(smallBase())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(smallBase())
	if err != nil {
		t.Fatal(err)
	}
	if a.Hieras.Latency.Mean() != b.Hieras.Latency.Mean() ||
		a.Chord.Hops.Mean() != b.Chord.Hops.Mean() {
		t.Error("same scenario produced different results")
	}
}

func TestFigures2and3Small(t *testing.T) {
	base := smallBase()
	sizes := map[string][]int{ModelTS: {100, 200}, ModelBRITE: {100}}
	res, err := Figures2and3(base, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 2 {
		t.Fatalf("sweeps = %d", len(res.Sweeps))
	}
	var buf bytes.Buffer
	res.HopsTable().Render(&buf)
	res.LatencyTable().Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "Figure 3") {
		t.Error("figure titles missing")
	}
	if strings.Count(out, "\nts") < 2 {
		t.Errorf("expected ts rows in output:\n%s", out)
	}
}

func TestFigures4and5Small(t *testing.T) {
	res, err := Figures4and5(smallBase())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.PDFTable().Render(&buf)
	res.CDFTable().Render(&buf)
	res.SummaryTable().Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4", "Figure 5", "lower-layer hop share"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// CDF last row must be ~1 for both columns.
	cdf := res.CDFTable()
	last := cdf.Rows[len(cdf.Rows)-1]
	if last[1] != "1.0000" && last[2] != "1.0000" {
		t.Errorf("CDF should reach 1, last row %v", last)
	}
}

func TestFigures6and7Small(t *testing.T) {
	res, err := Figures6and7(smallBase(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Landmarks != 2 || res.Rows[1].Landmarks != 4 {
		t.Error("landmark counts wrong")
	}
	var buf bytes.Buffer
	res.HopsTable().Render(&buf)
	res.LatencyTable().Render(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing Figure 6 title")
	}
}

func TestFigures8and9Small(t *testing.T) {
	res, err := Figures8and9(smallBase(), []int{150}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	res.HopsTable().Render(&buf)
	res.LatencyTable().Render(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("missing Figure 9 title")
	}
}

func TestTable1MatchesPaperStructure(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Node A's order is the paper's 1012.
	if tbl.Rows[0][5] != "1012" {
		t.Errorf("node A order = %q", tbl.Rows[0][5])
	}
	// C and D share the ring prefix "220".
	if tbl.Rows[2][5][:3] != "220" || tbl.Rows[3][5][:3] != "220" {
		t.Errorf("C/D orders %q %q", tbl.Rows[2][5], tbl.Rows[3][5])
	}
}

func TestTable2Structure(t *testing.T) {
	tbl, err := Table2(Scenario{Nodes: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	// Every layer-2 successor must be in the node's own ring; layer-1
	// successors may be anywhere. Extract the node's ring from the title.
	title := tbl.Title
	i := strings.Index(title, "ring \"")
	if i < 0 {
		t.Fatalf("title %q lacks ring name", title)
	}
	ringName := title[i+6 : i+6+strings.Index(title[i+6:], "\"")]
	for _, row := range tbl.Rows {
		if row[4] != ringName {
			t.Errorf("layer-2 successor in foreign ring %q (want %q)", row[4], ringName)
		}
	}
}

func TestTable3Structure(t *testing.T) {
	tbl, err := Table3(Scenario{Nodes: 80, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no ring tables rendered")
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[1], "2:") {
			t.Errorf("ringname %q should be layer-qualified", row[1])
		}
	}
}

func TestRingStatsTable(t *testing.T) {
	tbl, err := RingStatsTable(Scenario{Nodes: 100, Seed: 11, Depth: 3, Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want one per lower layer", len(tbl.Rows))
	}
}

func TestOverheadAnalysis(t *testing.T) {
	res, err := Overhead(Scenario{Nodes: 60, Seed: 12, Requests: 100}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	d1, d2 := res.Rows[0], res.Rows[1]
	if d1.Depth != 1 || d2.Depth != 2 {
		t.Fatal("depth order wrong")
	}
	// HIERAS maintains strictly more state and pays more per join.
	if d2.State.DistinctFingersPerNode < d1.State.DistinctFingersPerNode {
		t.Error("depth 2 should track at least as many distinct fingers")
	}
	if d2.JoinMsgs <= d1.JoinMsgs {
		t.Errorf("depth-2 join (%.1f msgs) should cost more than depth-1 (%.1f)",
			d2.JoinMsgs, d1.JoinMsgs)
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "Overhead analysis") {
		t.Error("missing title")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestDefaultSizes(t *testing.T) {
	sizes := DefaultSizes(1.0)
	if len(sizes[ModelTS]) != 10 || sizes[ModelTS][0] != 1000 || sizes[ModelTS][9] != 10000 {
		t.Errorf("ts sizes %v", sizes[ModelTS])
	}
	if sizes[ModelInet][0] != 3000 {
		t.Errorf("inet must start at 3000, got %v", sizes[ModelInet][0])
	}
	small := DefaultSizes(0.05)
	for _, v := range small[ModelTS] {
		if v < 50 {
			t.Errorf("scaled size %d below floor", v)
		}
	}
}

func TestRenderAll(t *testing.T) {
	base := smallBase()
	scale, err := Figures2and3(base, map[string][]int{ModelTS: {100}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Figures4and5(base)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Figures6and7(base, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	depth, err := Figures8and9(base, []int{100}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAll(&buf, scale, dist, lm, depth)
	for _, fig := range []string{"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9"} {
		if !strings.Contains(buf.String(), fig) {
			t.Errorf("RenderAll missing %s", fig)
		}
	}
}
