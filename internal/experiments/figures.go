package experiments

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// ---------------------------------------------------------------------------
// Figures 2 and 3: routing cost versus network size, three topology models.
// ---------------------------------------------------------------------------

// ScaleRow is one (model, size) measurement.
type ScaleRow struct {
	Nodes int
	Cmp   *Comparison
}

// ScaleSweep holds one model's size sweep.
type ScaleSweep struct {
	Model string
	Rows  []ScaleRow
}

// ScaleResult holds the full Figures 2/3 data set.
type ScaleResult struct {
	Sweeps []*ScaleSweep
}

// DefaultSizes mirrors the paper's node-count sweep at a scale factor:
// paper sizes are 1000..10000 step 1000 (Inet starting at 3000).
func DefaultSizes(scale float64) map[string][]int {
	mk := func(from, to, step int) []int {
		var out []int
		for n := from; n <= to; n += step {
			v := int(float64(n) * scale)
			if v < 50 {
				v = 50
			}
			out = append(out, v)
		}
		return out
	}
	return map[string][]int{
		ModelTS:    mk(1000, 10000, 1000),
		ModelInet:  mk(3000, 10000, 1000),
		ModelBRITE: mk(1000, 10000, 1000),
	}
}

// Figures2and3 runs the size sweep for every model. Both figures read the
// same runs: Figure 2 reports hops, Figure 3 latency.
func Figures2and3(base Scenario, sizesByModel map[string][]int) (*ScaleResult, error) {
	res := &ScaleResult{}
	for _, model := range []string{ModelTS, ModelInet, ModelBRITE} {
		sizes, ok := sizesByModel[model]
		if !ok {
			continue
		}
		sweep := &ScaleSweep{Model: model}
		for _, n := range sizes {
			s := base
			s.Model = model
			s.Nodes = n
			s.Seed = base.Seed + int64(n)
			cmp, err := RunComparison(s)
			if err != nil {
				return nil, fmt.Errorf("model %s n=%d: %w", model, n, err)
			}
			sweep.Rows = append(sweep.Rows, ScaleRow{Nodes: n, Cmp: cmp})
		}
		res.Sweeps = append(res.Sweeps, sweep)
	}
	return res, nil
}

// HopsTable renders Figure 2 (average number of routing hops vs size).
func (r *ScaleResult) HopsTable() *Table {
	t := &Table{
		Title:  "Figure 2: HIERAS vs Chord, average number of routing hops",
		Header: []string{"model", "nodes", "chord_hops", "hieras_hops", "overhead"},
	}
	for _, sw := range r.Sweeps {
		for _, row := range sw.Rows {
			t.AddRow(sw.Model, fmt.Sprint(row.Nodes),
				f4(row.Cmp.Chord.Hops.Mean()), f4(row.Cmp.Hieras.Hops.Mean()),
				pct(row.Cmp.HopRatio()-1))
		}
	}
	return t
}

// LatencyTable renders Figure 3 (average routing latency vs size).
func (r *ScaleResult) LatencyTable() *Table {
	t := &Table{
		Title:  "Figure 3: HIERAS vs Chord, average routing latency (ms)",
		Header: []string{"model", "nodes", "chord_ms", "hieras_ms", "hieras/chord"},
	}
	for _, sw := range r.Sweeps {
		for _, row := range sw.Rows {
			t.AddRow(sw.Model, fmt.Sprint(row.Nodes),
				f1(row.Cmp.Chord.Latency.Mean()), f1(row.Cmp.Hieras.Latency.Mean()),
				pct(row.Cmp.LatencyRatio()))
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: routing cost distributions on one large TS network.
// ---------------------------------------------------------------------------

// DistributionResult wraps the single large comparison backing Figures 4/5.
type DistributionResult struct {
	Cmp *Comparison
}

// Figures4and5 runs the distribution experiment (paper: 10000-node TS
// network, 100000 requests).
func Figures4and5(base Scenario) (*DistributionResult, error) {
	s := base
	s.Model = ModelTS
	cmp, err := RunComparison(s)
	if err != nil {
		return nil, err
	}
	return &DistributionResult{Cmp: cmp}, nil
}

// PDFTable renders Figure 4: the PDF of routing hops for Chord, HIERAS,
// and HIERAS's top-layer hops.
func (d *DistributionResult) PDFTable() *Table {
	t := &Table{
		Title:  "Figure 4: PDF of the number of routing hops",
		Header: []string{"hops", "chord_pdf", "hieras_pdf", "hieras_top_layer_pdf"},
	}
	ch := d.Cmp.HopsHistChord.PDF()
	hi := d.Cmp.HopsHistHieras.PDF()
	top := d.Cmp.HopsHistTop.PDF()
	maxLen := len(ch)
	if len(hi) > maxLen {
		maxLen = len(hi)
	}
	if len(top) > maxLen {
		maxLen = len(top)
	}
	for i := 0; i < maxLen; i++ {
		get := func(pts []stats.Point) float64 {
			if i < len(pts) {
				return pts[i].Y
			}
			return 0
		}
		t.AddRow(fmt.Sprint(i), f4(get(ch)), f4(get(hi)), f4(get(top)))
	}
	return t
}

// CDFTable renders Figure 5: the CDF of routing latency.
func (d *DistributionResult) CDFTable() *Table {
	t := &Table{
		Title:  "Figure 5: CDF of routing latency (20 ms buckets)",
		Header: []string{"latency_ms", "chord_cdf", "hieras_cdf"},
	}
	ch := d.Cmp.LatHistChord.CDF()
	hi := d.Cmp.LatHistHieras.CDF()
	maxLen := len(ch)
	if len(hi) > maxLen {
		maxLen = len(hi)
	}
	for i := 0; i < maxLen; i++ {
		get := func(pts []stats.Point) float64 {
			if i < len(pts) {
				return pts[i].Y
			}
			return 1
		}
		x := float64(i+1) * 20
		t.AddRow(f1(x), f4(get(ch)), f4(get(hi)))
	}
	return t
}

// SummaryTable renders the §4.3 headline numbers next to the paper's.
func (d *DistributionResult) SummaryTable() *Table {
	c := d.Cmp
	t := &Table{
		Title:  "Section 4.3 summary (paper values in parentheses)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.AddRow("chord avg hops", f4(c.Chord.Hops.Mean()), "6.4933")
	t.AddRow("hieras avg hops", f4(c.Hieras.Hops.Mean()), "6.5937")
	t.AddRow("hop overhead", pct(c.HopRatio()-1), "1.55%")
	t.AddRow("chord avg latency ms", f1(c.Chord.Latency.Mean()), "511.47")
	t.AddRow("hieras avg latency ms", f1(c.Hieras.Latency.Mean()), "276.53")
	t.AddRow("latency ratio", pct(c.LatencyRatio()), "54.07%")
	t.AddRow("lower-layer hop share", pct(c.LowerHopShare()), "71.38%")
	t.AddRow("lower-layer latency share", pct(c.LowerLatencyShare()), "47.24%")
	t.AddRow("top-layer link delay ms", f1(c.TopLink.Mean()), "79")
	t.AddRow("lower-layer link delay ms", f1(c.LowerLink.Mean()), "27.758")
	return t
}

// ---------------------------------------------------------------------------
// Figures 6 and 7: effect of the number of landmark nodes.
// ---------------------------------------------------------------------------

// LandmarkRow is one landmark-count measurement.
type LandmarkRow struct {
	Landmarks int
	Cmp       *Comparison
}

// LandmarkSweep holds the Figures 6/7 data.
type LandmarkSweep struct {
	Rows []LandmarkRow
}

// Figures6and7 varies the landmark count (paper: 2..12 on a 10000-node TS
// network).
func Figures6and7(base Scenario, counts []int) (*LandmarkSweep, error) {
	res := &LandmarkSweep{}
	for _, lm := range counts {
		s := base
		s.Model = ModelTS
		s.Landmarks = lm
		s.Seed = base.Seed + int64(lm)*7919
		cmp, err := RunComparison(s)
		if err != nil {
			return nil, fmt.Errorf("landmarks=%d: %w", lm, err)
		}
		res.Rows = append(res.Rows, LandmarkRow{Landmarks: lm, Cmp: cmp})
	}
	return res, nil
}

// HopsTable renders Figure 6.
func (r *LandmarkSweep) HopsTable() *Table {
	t := &Table{
		Title:  "Figure 6: average routing hops vs number of landmarks",
		Header: []string{"landmarks", "chord_hops", "hieras_hops", "hieras_lower_hops"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Landmarks),
			f4(row.Cmp.Chord.Hops.Mean()), f4(row.Cmp.Hieras.Hops.Mean()),
			f4(row.Cmp.LowerHops.Mean()))
	}
	return t
}

// LatencyTable renders Figure 7.
func (r *LandmarkSweep) LatencyTable() *Table {
	t := &Table{
		Title:  "Figure 7: average routing latency vs number of landmarks",
		Header: []string{"landmarks", "chord_ms", "hieras_ms", "hieras/chord"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Landmarks),
			f1(row.Cmp.Chord.Latency.Mean()), f1(row.Cmp.Hieras.Latency.Mean()),
			pct(row.Cmp.LatencyRatio()))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures 8 and 9: effect of hierarchy depth.
// ---------------------------------------------------------------------------

// DepthRow is one (size, depth) measurement.
type DepthRow struct {
	Nodes int
	Depth int
	Cmp   *Comparison
}

// DepthSweep holds the Figures 8/9 data.
type DepthSweep struct {
	Rows []DepthRow
}

// Figures8and9 varies hierarchy depth and network size (paper: depths 2-4,
// 5000-10000 nodes, 6 landmarks, TS model).
func Figures8and9(base Scenario, sizes, depths []int) (*DepthSweep, error) {
	res := &DepthSweep{}
	for _, n := range sizes {
		for _, depth := range depths {
			s := base
			s.Model = ModelTS
			s.Nodes = n
			s.Depth = depth
			if s.Landmarks == 0 {
				s.Landmarks = 6
			}
			s.Seed = base.Seed + int64(n)*31 // same topology across depths
			cmp, err := RunComparison(s)
			if err != nil {
				return nil, fmt.Errorf("n=%d depth=%d: %w", n, depth, err)
			}
			res.Rows = append(res.Rows, DepthRow{Nodes: n, Depth: depth, Cmp: cmp})
		}
	}
	return res, nil
}

// HopsTable renders Figure 8.
func (r *DepthSweep) HopsTable() *Table {
	t := &Table{
		Title:  "Figure 8: average routing hops vs hierarchy depth",
		Header: []string{"nodes", "depth", "hieras_hops", "chord_hops"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Nodes), fmt.Sprint(row.Depth),
			f4(row.Cmp.Hieras.Hops.Mean()), f4(row.Cmp.Chord.Hops.Mean()))
	}
	return t
}

// LatencyTable renders Figure 9.
func (r *DepthSweep) LatencyTable() *Table {
	t := &Table{
		Title:  "Figure 9: average routing latency vs hierarchy depth (ms)",
		Header: []string{"nodes", "depth", "hieras_ms", "chord_ms", "hieras/chord"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Nodes), fmt.Sprint(row.Depth),
			f1(row.Cmp.Hieras.Latency.Mean()), f1(row.Cmp.Chord.Latency.Mean()),
			pct(row.Cmp.LatencyRatio()))
	}
	return t
}

// RenderAll writes every figure table of a full run to w.
func RenderAll(w io.Writer, scale *ScaleResult, dist *DistributionResult, lm *LandmarkSweep, depth *DepthSweep) {
	scale.HopsTable().Render(w)
	fmt.Fprintln(w)
	scale.LatencyTable().Render(w)
	fmt.Fprintln(w)
	dist.PDFTable().Render(w)
	fmt.Fprintln(w)
	dist.CDFTable().Render(w)
	fmt.Fprintln(w)
	dist.SummaryTable().Render(w)
	fmt.Fprintln(w)
	lm.HopsTable().Render(w)
	fmt.Fprintln(w)
	lm.LatencyTable().Render(w)
	fmt.Fprintln(w)
	depth.HopsTable().Render(w)
	fmt.Fprintln(w)
	depth.LatencyTable().Render(w)
}
