package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ResilienceRow measures routing under one failure fraction.
type ResilienceRow struct {
	FailedFraction float64
	HierasOK       float64 // fraction of lookups delivered to the live owner
	ChordOK        float64
	HierasLatency  float64 // mean latency of successful lookups, ms
	ChordLatency   float64
}

// ResilienceResult sweeps the failed-node fraction on one overlay and
// measures delivery through the inherited Chord failure machinery
// (successor lists in every layer, dead-finger skipping) before any
// repair runs.
type ResilienceResult struct {
	Scenario Scenario
	Rows     []ResilienceRow
}

// FailureResilience runs the failure sweep.
func FailureResilience(s Scenario, fractions []float64) (*ResilienceResult, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	res := &ResilienceResult{Scenario: s}
	for _, frac := range fractions {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: failure fraction %v out of [0,1)", frac)
		}
		rng := rand.New(rand.NewSource(s.Seed + int64(frac*1000)))
		dead := make([]bool, o.N())
		for killed := 0; killed < int(frac*float64(o.N())); {
			i := rng.Intn(o.N())
			if !dead[i] {
				dead[i] = true
				killed++
			}
		}
		view, err := o.WithFailures(dead)
		if err != nil {
			return nil, err
		}
		row := ResilienceRow{FailedFraction: frac}
		var hOK, cOK, trials int
		var hLat, cLat stats.Online
		for trial := 0; trial < s.Requests; trial++ {
			from := rng.Intn(o.N())
			if dead[from] {
				continue
			}
			trials++
			key := id.Rand(rng)
			if r, err := view.Route(from, key); err == nil {
				hOK++
				hLat.Add(r.Latency)
			}
			if r, err := view.ChordRoute(from, key); err == nil {
				cOK++
				cLat.Add(r.Latency)
			}
		}
		if trials > 0 {
			row.HierasOK = float64(hOK) / float64(trials)
			row.ChordOK = float64(cOK) / float64(trials)
		}
		row.HierasLatency = hLat.Mean()
		row.ChordLatency = cLat.Mean()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the resilience sweep.
func (r *ResilienceResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Failure resilience before repair (%d nodes, r=%d per layer)",
			r.Scenario.Nodes, 4),
		Header: []string{"failed", "hieras_delivered", "chord_delivered", "hieras_ms", "chord_ms"},
	}
	for _, row := range r.Rows {
		t.AddRow(pct(row.FailedFraction), pct(row.HierasOK), pct(row.ChordOK),
			f1(row.HierasLatency), f1(row.ChordLatency))
	}
	return t
}

// CacheRow measures one cache configuration under a Zipf workload.
type CacheRow struct {
	Capacity    int
	Policy      cache.Policy
	HitRate     float64
	MeanLatency float64 // ms, all lookups
}

// CacheResult sweeps location-cache capacities under a Zipf workload —
// the "caching scheme of the underlying algorithm" the paper inherits
// (§3.2).
type CacheResult struct {
	Scenario    Scenario
	NoCacheMean float64
	Rows        []CacheRow
}

// CacheStudy runs the cache sweep.
func CacheStudy(s Scenario, capacities []int, policy cache.Policy) (*CacheResult, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	res := &CacheResult{Scenario: s}
	// Baseline without caching.
	gen, err := workload.NewZipf(s.Seed+5, o.N(), 2000, 1.2)
	if err != nil {
		return nil, err
	}
	var base stats.Online
	for i := 0; i < s.Requests; i++ {
		req := gen.Next()
		base.Add(o.Route(req.Origin, req.Key).Latency)
	}
	res.NoCacheMean = base.Mean()
	for _, capa := range capacities {
		v, err := cache.New(o, capa, policy)
		if err != nil {
			return nil, err
		}
		if s.Metrics != nil {
			v.Instrument(s.Metrics, metrics.Label{Name: "capacity", Value: fmt.Sprint(capa)})
		}
		gen, err := workload.NewZipf(s.Seed+5, o.N(), 2000, 1.2)
		if err != nil {
			return nil, err
		}
		var lat stats.Online
		for i := 0; i < s.Requests; i++ {
			req := gen.Next()
			lat.Add(v.Lookup(req.Origin, req.Key).Latency)
		}
		res.Rows = append(res.Rows, CacheRow{
			Capacity:    capa,
			Policy:      policy,
			HitRate:     v.HitRate(),
			MeanLatency: lat.Mean(),
		})
	}
	return res, nil
}

// Table renders the cache sweep.
func (r *CacheResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Location caching under Zipf(1.2) workload (%d nodes; no cache: %.1f ms)",
			r.Scenario.Nodes, r.NoCacheMean),
		Header: []string{"capacity", "policy", "hit_rate", "mean_latency_ms", "vs_no_cache"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Capacity), row.Policy.String(), pct(row.HitRate),
			f1(row.MeanLatency), pct(row.MeanLatency/r.NoCacheMean))
	}
	return t
}
