package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells that can
// be printed as aligned text or exported as CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table (header + rows) as CSV, without the title.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
