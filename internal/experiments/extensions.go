package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/pastry"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/topology/transitstub"
	"repro/internal/workload"
)

// AlgoRow is one algorithm's aggregate routing metrics in a multi-way
// comparison.
type AlgoRow struct {
	Name    string
	Hops    stats.Online
	Latency stats.Online
}

// AlgoComparison compares routing algorithms over the same underlay, the
// same peer population and the same request stream — the head-to-head the
// paper defers to future work ("compare HIERAS performance with other low
// latency DHT algorithms such as Pastry", §6).
type AlgoComparison struct {
	Scenario Scenario
	Rows     []AlgoRow
}

// CompareAlgorithms runs Chord, Chord+PNS, Pastry (with proximity
// neighbor selection), HIERAS and HIERAS+PNS on one Transit-Stub network.
func CompareAlgorithms(s Scenario) (*AlgoComparison, error) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(s.Nodes), rng)
	if err != nil {
		return nil, err
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: s.Nodes, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		return nil, err
	}

	build := func(cfg core.Config, seed int64) (*core.Overlay, error) {
		return core.Build(net, cfg, rand.New(rand.NewSource(seed)))
	}
	plain, err := build(core.Config{Depth: 2, Landmarks: s.Landmarks, Workers: s.Workers}, s.Seed+1)
	if err != nil {
		return nil, err
	}
	pns, err := build(core.Config{
		Depth: 2, Landmarks: s.Landmarks, Workers: s.Workers, ProximityFingers: true,
	}, s.Seed+1) // same seed: same landmarks/rings, only finger choice differs
	if err != nil {
		return nil, err
	}
	// Pastry over the same peer population (same host->ID mapping).
	pm := make([]pastry.Member, plain.N())
	for i := 0; i < plain.N(); i++ {
		nd := plain.Node(i)
		pm[i] = pastry.Member{ID: nd.ID, Host: nd.Host}
	}
	pt, err := pastry.Build(pm, net, pastry.Config{Seed: s.Seed + 2})
	if err != nil {
		return nil, err
	}

	gen, err := workload.NewUniform(s.Seed+3, plain.N())
	if err != nil {
		return nil, err
	}
	reqs := gen.Batch(s.Requests)

	rows := []AlgoRow{
		{Name: "chord"}, {Name: "chord+pns"}, {Name: "pastry"},
		{Name: "hieras"}, {Name: "hieras+pns"},
	}
	pastryLat := func(from int, key id.ID) (int, float64) {
		hops := 0
		lat := 0.0
		pt.Route(from, key, func(f, to int) {
			hops++
			lat += net.Latency(pt.Host(f), pt.Host(to))
		})
		return hops, lat
	}
	for _, req := range reqs {
		c := plain.ChordRoute(req.Origin, req.Key)
		rows[0].Hops.Add(float64(c.NumHops()))
		rows[0].Latency.Add(c.Latency)

		cp := pns.ChordRoute(req.Origin, req.Key)
		rows[1].Hops.Add(float64(cp.NumHops()))
		rows[1].Latency.Add(cp.Latency)

		ph, pl := pastryLat(req.Origin, req.Key)
		rows[2].Hops.Add(float64(ph))
		rows[2].Latency.Add(pl)

		h := plain.Route(req.Origin, req.Key)
		rows[3].Hops.Add(float64(h.NumHops()))
		rows[3].Latency.Add(h.Latency)

		hp := pns.Route(req.Origin, req.Key)
		rows[4].Hops.Add(float64(hp.NumHops()))
		rows[4].Latency.Add(hp.Latency)
	}
	return &AlgoComparison{Scenario: s, Rows: rows}, nil
}

// Row returns the row with the given name, or nil.
func (a *AlgoComparison) Row(name string) *AlgoRow {
	for i := range a.Rows {
		if a.Rows[i].Name == name {
			return &a.Rows[i]
		}
	}
	return nil
}

// Table renders the multi-way comparison with latencies relative to Chord.
func (a *AlgoComparison) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Algorithm comparison on TS, %d nodes, %d requests (paper §6 future work)",
			a.Scenario.Nodes, a.Scenario.Requests),
		Header: []string{"algorithm", "avg_hops", "avg_latency_ms", "latency_vs_chord"},
	}
	base := a.Rows[0].Latency.Mean()
	for _, r := range a.Rows {
		t.AddRow(r.Name, f4(r.Hops.Mean()), f1(r.Latency.Mean()), pct(r.Latency.Mean()/base))
	}
	return t
}

// CANResult compares flat CAN with HIERAS-over-CAN on one network —
// substantiating the paper's §3.2 claim that the hierarchy transplants to
// CAN.
type CANResult struct {
	Scenario  Scenario
	Flat      AlgoRow
	Hier      AlgoRow
	LowerHops stats.Online
}

// CompareCAN runs the CAN transplant experiment.
func CompareCAN(s Scenario) (*CANResult, error) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	m, err := transitstub.Generate(transitstub.DefaultConfig(s.Nodes), rng)
	if err != nil {
		return nil, err
	}
	net, err := topology.Attach(m, m.G, topology.AttachOptions{
		Hosts: s.Nodes, Routers: m.StubRouters, Spread: true,
	}, rng)
	if err != nil {
		return nil, err
	}
	h, err := can.BuildHierarchy(net, can.HierarchyConfig{
		Depth: s.Depth, Landmarks: s.Landmarks,
	}, rand.New(rand.NewSource(s.Seed+1)))
	if err != nil {
		return nil, err
	}
	res := &CANResult{Scenario: s, Flat: AlgoRow{Name: "can"}, Hier: AlgoRow{Name: "hieras-can"}}
	r2 := rand.New(rand.NewSource(s.Seed + 2))
	for i := 0; i < s.Requests; i++ {
		from := r2.Intn(h.N())
		p := can.Point{r2.Float64(), r2.Float64()}
		f := h.FlatRoute(from, p)
		res.Flat.Hops.Add(float64(f.Hops))
		res.Flat.Latency.Add(f.Latency)
		hh := h.Route(from, p)
		res.Hier.Hops.Add(float64(hh.Hops))
		res.Hier.Latency.Add(hh.Latency)
		res.LowerHops.Add(float64(hh.LowerHops))
	}
	return res, nil
}

// Table renders the CAN transplant comparison.
func (r *CANResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("HIERAS over CAN (paper §3.2 transplant), %d nodes, %d requests",
			r.Scenario.Nodes, r.Scenario.Requests),
		Header: []string{"algorithm", "avg_hops", "avg_latency_ms", "ratio"},
	}
	base := r.Flat.Latency.Mean()
	t.AddRow(r.Flat.Name, f4(r.Flat.Hops.Mean()), f1(r.Flat.Latency.Mean()), pct(1))
	t.AddRow(r.Hier.Name, f4(r.Hier.Hops.Mean()), f1(r.Hier.Latency.Mean()),
		pct(r.Hier.Latency.Mean()/base))
	return t
}
