package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cache"
)

func TestFailureResilience(t *testing.T) {
	res, err := FailureResilience(Scenario{Nodes: 150, Requests: 300, Seed: 41}, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	healthy := res.Rows[0]
	if healthy.HierasOK != 1 || healthy.ChordOK != 1 {
		t.Errorf("healthy overlay should deliver everything: %+v", healthy)
	}
	broken := res.Rows[1]
	if broken.HierasOK < 0.5 || broken.ChordOK < 0.5 {
		t.Errorf("20%% failures should not halve delivery: %+v", broken)
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "Failure resilience") {
		t.Error("missing title")
	}
	if _, err := FailureResilience(Scenario{Nodes: 50, Requests: 10, Seed: 1}, []float64{1.5}); err == nil {
		t.Error("fraction >= 1 accepted")
	}
}

func TestCacheStudy(t *testing.T) {
	res, err := CacheStudy(Scenario{Nodes: 120, Requests: 2500, Seed: 42}, []int{8, 256}, cache.CacheAtOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	small, big := res.Rows[0], res.Rows[1]
	if big.HitRate <= small.HitRate {
		t.Errorf("larger cache should hit more: %.3f vs %.3f", big.HitRate, small.HitRate)
	}
	if big.MeanLatency >= res.NoCacheMean {
		t.Errorf("caching (%.1f ms) should beat no cache (%.1f ms)", big.MeanLatency, res.NoCacheMean)
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "Location caching") {
		t.Error("missing title")
	}
}

func TestWaxmanScenario(t *testing.T) {
	cmp, err := RunComparison(Scenario{Model: ModelWaxman, Nodes: 150, Requests: 400, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.LatencyRatio() >= 1.05 {
		t.Errorf("HIERAS on waxman should not lose: ratio %.3f", cmp.LatencyRatio())
	}
}
