// Package experiments reproduces every table and figure of the HIERAS
// paper's evaluation (§4) plus the overhead analysis its future-work
// section calls for. Each experiment has a typed result with Render
// (aligned text) and CSV output; cmd/hieras-bench drives the full suite
// and bench_test.go exposes one benchmark per artifact.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/topology/brite"
	"repro/internal/topology/inet"
	"repro/internal/topology/transitstub"
	"repro/internal/topology/waxman"
	"repro/internal/workload"
)

// Model names accepted by Scenario.Model.
const (
	ModelTS     = "ts"
	ModelInet   = "inet"
	ModelBRITE  = "brite"
	ModelWaxman = "waxman"
)

// Scenario describes one simulated system instance.
type Scenario struct {
	Model     string // ts | inet | brite
	Nodes     int    // overlay peers
	Landmarks int    // landmark nodes (paper default 4)
	Depth     int    // hierarchy depth (paper default 2)
	Requests  int    // routing requests (paper: 100000)
	Seed      int64
	// Routers overrides the router count for inet/brite underlays
	// (default: Nodes/4 clamped to [256, 2048]; the TS model always uses
	// one stub router per overlay host).
	Routers int
	Workers int
	// ProximityFingers enables PNS finger selection in every ring (see
	// core.Config.ProximityFingers).
	ProximityFingers bool
	// Metrics, when non-nil, instruments the built overlay (and, in
	// CacheStudy, each swept cache) on this registry. Use one registry
	// per scenario run: overlay metric names collide otherwise.
	Metrics *metrics.Registry
	// BlockSize is the batch engine's deterministic work unit: requests
	// per block (default 512). Summaries are byte-identical across worker
	// counts for a fixed (Seed, BlockSize) pair; changing BlockSize
	// repartitions the per-block RNG streams and changes the stream.
	BlockSize int
	// Pool, when non-nil, runs the comparison workload on this (possibly
	// Instrument-ed) pool instead of an ephemeral one built from Workers.
	Pool *Pool
}

func (s Scenario) withDefaults() Scenario {
	if s.Model == "" {
		s.Model = ModelTS
	}
	if s.Nodes == 0 {
		s.Nodes = 1000
	}
	if s.Landmarks == 0 {
		s.Landmarks = 4
	}
	if s.Depth == 0 {
		s.Depth = 2
	}
	if s.Requests == 0 {
		s.Requests = 10000
	}
	if s.Routers == 0 {
		r := s.Nodes / 4
		if r < 256 {
			r = 256
		}
		if r > 2048 {
			r = 2048
		}
		s.Routers = r
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.BlockSize <= 0 {
		s.BlockSize = DefaultBlockSize
	}
	return s
}

// DefaultBlockSize is the default Scenario.BlockSize.
const DefaultBlockSize = 512

// BuildOverlay generates the underlay for the scenario's topology model,
// attaches the overlay hosts and builds the HIERAS overlay.
func BuildOverlay(s Scenario) (*core.Overlay, error) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	var u *topology.Underlay
	switch s.Model {
	case ModelTS:
		m, err := transitstub.Generate(transitstub.DefaultConfig(s.Nodes), rng)
		if err != nil {
			return nil, err
		}
		u = &topology.Underlay{Graph: m.G, Model: m, HostCandidates: m.StubRouters}
	case ModelInet:
		var err error
		u, err = inet.Generate(inet.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	case ModelBRITE:
		var err error
		u, err = brite.Generate(brite.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	case ModelWaxman:
		var err error
		u, err = waxman.Generate(waxman.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown topology model %q", s.Model)
	}
	net, err := topology.Attach(u.Model, u.Graph, topology.AttachOptions{
		Hosts:   s.Nodes,
		Routers: u.HostCandidates,
		Spread:  true,
	}, rng)
	if err != nil {
		return nil, err
	}
	return core.Build(net, core.Config{
		Depth:            s.Depth,
		Landmarks:        s.Landmarks,
		Workers:          s.Workers,
		ProximityFingers: s.ProximityFingers,
		Metrics:          s.Metrics,
	}, rng)
}

// RouteStats aggregates one algorithm's routing metrics.
type RouteStats struct {
	Hops    stats.Online
	Latency stats.Online
}

// Comparison holds HIERAS-vs-Chord metrics for one scenario — the raw
// material for Figures 2-9.
type Comparison struct {
	Scenario Scenario

	Hieras RouteStats
	Chord  RouteStats

	// LowerHops / LowerLatency aggregate per-request lower-layer hops and
	// latency in HIERAS.
	LowerHops    stats.Online
	LowerLatency stats.Online

	// TopLink / LowerLink aggregate per-hop link latencies by layer
	// (paper §4.3: 79 ms vs 27.8 ms).
	TopLink   stats.Online
	LowerLink stats.Online

	// Distributions for Figures 4 and 5.
	HopsHistHieras *stats.Histogram // width 1
	HopsHistChord  *stats.Histogram
	HopsHistTop    *stats.Histogram // HIERAS hops taken in the top layer
	LatHistHieras  *stats.Histogram // width 20 ms
	LatHistChord   *stats.Histogram

	// Latency quantile sketches (mergeable, 1% relative accuracy) for the
	// distribution tails the fixed-width histograms are too coarse for.
	HierasLatQ *stats.Sketch
	ChordLatQ  *stats.Sketch
}

// observe accumulates one request's HIERAS and Chord routes.
func (c *Comparison) observe(h, ch *core.RouteResult) error {
	c.Hieras.Hops.Add(float64(h.NumHops()))
	c.Hieras.Latency.Add(h.Latency)
	c.Chord.Hops.Add(float64(ch.NumHops()))
	c.Chord.Latency.Add(ch.Latency)
	c.LowerHops.Add(float64(h.LowerHops))
	c.LowerLatency.Add(h.LowerLatency)
	for _, hop := range h.Hops {
		if hop.Layer == 1 {
			c.TopLink.Add(hop.Latency)
		} else {
			c.LowerLink.Add(hop.Latency)
		}
	}
	if err := c.HopsHistHieras.Add(float64(h.NumHops())); err != nil {
		return err
	}
	if err := c.HopsHistChord.Add(float64(ch.NumHops())); err != nil {
		return err
	}
	if err := c.HopsHistTop.Add(float64(h.NumHops() - h.LowerHops)); err != nil {
		return err
	}
	if err := c.LatHistHieras.Add(h.Latency); err != nil {
		return err
	}
	if err := c.LatHistChord.Add(ch.Latency); err != nil {
		return err
	}
	if err := c.HierasLatQ.Add(h.Latency); err != nil {
		return err
	}
	return c.ChordLatQ.Add(ch.Latency)
}

// merge folds another (initialised) comparison into c. The batch engine
// calls it in ascending block order, which keeps merged floating-point
// summaries identical across worker counts.
func (c *Comparison) merge(b *Comparison) error {
	c.Hieras.Hops.Merge(&b.Hieras.Hops)
	c.Hieras.Latency.Merge(&b.Hieras.Latency)
	c.Chord.Hops.Merge(&b.Chord.Hops)
	c.Chord.Latency.Merge(&b.Chord.Latency)
	c.LowerHops.Merge(&b.LowerHops)
	c.LowerLatency.Merge(&b.LowerLatency)
	c.TopLink.Merge(&b.TopLink)
	c.LowerLink.Merge(&b.LowerLink)
	if err := c.HopsHistHieras.Merge(b.HopsHistHieras); err != nil {
		return err
	}
	if err := c.HopsHistChord.Merge(b.HopsHistChord); err != nil {
		return err
	}
	if err := c.HopsHistTop.Merge(b.HopsHistTop); err != nil {
		return err
	}
	if err := c.LatHistHieras.Merge(b.LatHistHieras); err != nil {
		return err
	}
	if err := c.LatHistChord.Merge(b.LatHistChord); err != nil {
		return err
	}
	if err := c.HierasLatQ.Merge(b.HierasLatQ); err != nil {
		return err
	}
	return c.ChordLatQ.Merge(b.ChordLatQ)
}

// HopRatio returns mean HIERAS hops / mean Chord hops.
func (c *Comparison) HopRatio() float64 { return c.Hieras.Hops.Mean() / c.Chord.Hops.Mean() }

// LatencyRatio returns mean HIERAS latency / mean Chord latency.
func (c *Comparison) LatencyRatio() float64 {
	return c.Hieras.Latency.Mean() / c.Chord.Latency.Mean()
}

// LowerHopShare returns the fraction of HIERAS hops taken in lower rings.
func (c *Comparison) LowerHopShare() float64 {
	total := c.Hieras.Hops.Mean() * float64(c.Hieras.Hops.N())
	if total == 0 {
		return 0
	}
	return c.LowerHops.Mean() * float64(c.LowerHops.N()) / total
}

// LowerLatencyShare returns the fraction of HIERAS routing latency spent
// in lower rings.
func (c *Comparison) LowerLatencyShare() float64 {
	total := c.Hieras.Latency.Mean() * float64(c.Hieras.Latency.N())
	if total == 0 {
		return 0
	}
	return c.LowerLatency.Mean() * float64(c.LowerLatency.N()) / total
}

// RunComparison routes the scenario's request stream through both HIERAS
// and flat Chord over the same overlay, in parallel across Workers.
func RunComparison(s Scenario) (*Comparison, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	return CompareOn(o, s)
}

// CompareOn runs the comparison workload over an existing overlay (so
// several experiments can share one expensive build).
func CompareOn(o *core.Overlay, s Scenario) (*Comparison, error) {
	return CompareStream(context.Background(), o, s, nil) //lint:allow ctxflow CompareOn is the documented ctx-less convenience wrapper over CompareContext/CompareStream
}

// CompareContext is CompareOn with cancellation: it returns early with
// ctx.Err() when ctx is cancelled mid-run.
func CompareContext(ctx context.Context, o *core.Overlay, s Scenario) (*Comparison, error) {
	return CompareStream(ctx, o, s, nil)
}

// Progress is one progressive summary of a streaming comparison: the
// statistics over the first Requests of Total requests. Because blocks
// commit in order, every Progress is an exact prefix of the final result.
type Progress struct {
	Requests, Total int
	HierasHops      float64
	ChordHops       float64
	HierasLatencyMs float64
	ChordLatencyMs  float64
	LatencyRatio    float64
}

// CompareStream runs the comparison workload through the parallel batch
// query engine. Requests are generated in deterministic blocks of
// s.BlockSize (each block draws from its own RNG stream split off s.Seed)
// and merged in block order, so the result is byte-identical for any
// worker count. progress, when non-nil, is invoked after every committed
// block, serialized and in order — long runs can report partial summaries
// without waiting for the tail.
func CompareStream(ctx context.Context, o *core.Overlay, s Scenario, progress func(Progress)) (*Comparison, error) {
	s = s.withDefaults()
	blocks := (s.Requests + s.BlockSize - 1) / s.BlockSize
	parts := make([]*Comparison, blocks)

	out := &Comparison{Scenario: s}
	if err := initHists(out); err != nil {
		return nil, err
	}
	pool := s.Pool
	if pool == nil {
		pool = NewPool(s.Workers)
	}
	merged := 0
	err := pool.Run(ctx, blocks,
		func(_, b int) error {
			gen, err := workload.NewUniform(blockSeed(s.Seed, b), o.N())
			if err != nil {
				return err
			}
			count := s.BlockSize
			if last := s.Requests - b*s.BlockSize; count > last {
				count = last
			}
			part := &Comparison{}
			if err := initHists(part); err != nil {
				return err
			}
			for i := 0; i < count; i++ {
				r := gen.Next()
				h := o.Route(r.Origin, r.Key)
				c := o.ChordRoute(r.Origin, r.Key)
				if err := part.observe(&h, &c); err != nil {
					return err
				}
			}
			parts[b] = part
			return nil
		},
		func(b int) error {
			part := parts[b]
			parts[b] = nil
			if err := out.merge(part); err != nil {
				return err
			}
			if progress != nil {
				merged += int(part.Hieras.Hops.N())
				progress(Progress{
					Requests:        merged,
					Total:           s.Requests,
					HierasHops:      out.Hieras.Hops.Mean(),
					ChordHops:       out.Chord.Hops.Mean(),
					HierasLatencyMs: out.Hieras.Latency.Mean(),
					ChordLatencyMs:  out.Chord.Latency.Mean(),
					LatencyRatio:    out.LatencyRatio(),
				})
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func initHists(c *Comparison) error {
	var err error
	if c.HopsHistHieras, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.HopsHistChord, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.HopsHistTop, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.LatHistHieras, err = stats.NewHistogram(20); err != nil {
		return err
	}
	if c.LatHistChord, err = stats.NewHistogram(20); err != nil {
		return err
	}
	if c.HierasLatQ, err = stats.NewSketch(0.01); err != nil {
		return err
	}
	c.ChordLatQ, err = stats.NewSketch(0.01)
	return err
}
