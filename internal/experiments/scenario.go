// Package experiments reproduces every table and figure of the HIERAS
// paper's evaluation (§4) plus the overhead analysis its future-work
// section calls for. Each experiment has a typed result with Render
// (aligned text) and CSV output; cmd/hieras-bench drives the full suite
// and bench_test.go exposes one benchmark per artifact.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/topology/brite"
	"repro/internal/topology/inet"
	"repro/internal/topology/transitstub"
	"repro/internal/topology/waxman"
	"repro/internal/workload"
)

// Model names accepted by Scenario.Model.
const (
	ModelTS     = "ts"
	ModelInet   = "inet"
	ModelBRITE  = "brite"
	ModelWaxman = "waxman"
)

// Scenario describes one simulated system instance.
type Scenario struct {
	Model     string // ts | inet | brite
	Nodes     int    // overlay peers
	Landmarks int    // landmark nodes (paper default 4)
	Depth     int    // hierarchy depth (paper default 2)
	Requests  int    // routing requests (paper: 100000)
	Seed      int64
	// Routers overrides the router count for inet/brite underlays
	// (default: Nodes/4 clamped to [256, 2048]; the TS model always uses
	// one stub router per overlay host).
	Routers int
	Workers int
	// ProximityFingers enables PNS finger selection in every ring (see
	// core.Config.ProximityFingers).
	ProximityFingers bool
	// Metrics, when non-nil, instruments the built overlay (and, in
	// CacheStudy, each swept cache) on this registry. Use one registry
	// per scenario run: overlay metric names collide otherwise.
	Metrics *metrics.Registry
}

func (s Scenario) withDefaults() Scenario {
	if s.Model == "" {
		s.Model = ModelTS
	}
	if s.Nodes == 0 {
		s.Nodes = 1000
	}
	if s.Landmarks == 0 {
		s.Landmarks = 4
	}
	if s.Depth == 0 {
		s.Depth = 2
	}
	if s.Requests == 0 {
		s.Requests = 10000
	}
	if s.Routers == 0 {
		r := s.Nodes / 4
		if r < 256 {
			r = 256
		}
		if r > 2048 {
			r = 2048
		}
		s.Routers = r
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// BuildOverlay generates the underlay for the scenario's topology model,
// attaches the overlay hosts and builds the HIERAS overlay.
func BuildOverlay(s Scenario) (*core.Overlay, error) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	var u *topology.Underlay
	switch s.Model {
	case ModelTS:
		m, err := transitstub.Generate(transitstub.DefaultConfig(s.Nodes), rng)
		if err != nil {
			return nil, err
		}
		u = &topology.Underlay{Graph: m.G, Model: m, HostCandidates: m.StubRouters}
	case ModelInet:
		var err error
		u, err = inet.Generate(inet.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	case ModelBRITE:
		var err error
		u, err = brite.Generate(brite.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	case ModelWaxman:
		var err error
		u, err = waxman.Generate(waxman.Config{Routers: s.Routers}, rng)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown topology model %q", s.Model)
	}
	net, err := topology.Attach(u.Model, u.Graph, topology.AttachOptions{
		Hosts:   s.Nodes,
		Routers: u.HostCandidates,
		Spread:  true,
	}, rng)
	if err != nil {
		return nil, err
	}
	return core.Build(net, core.Config{
		Depth:            s.Depth,
		Landmarks:        s.Landmarks,
		Workers:          s.Workers,
		ProximityFingers: s.ProximityFingers,
		Metrics:          s.Metrics,
	}, rng)
}

// RouteStats aggregates one algorithm's routing metrics.
type RouteStats struct {
	Hops    stats.Online
	Latency stats.Online
}

// Comparison holds HIERAS-vs-Chord metrics for one scenario — the raw
// material for Figures 2-9.
type Comparison struct {
	Scenario Scenario

	Hieras RouteStats
	Chord  RouteStats

	// LowerHops / LowerLatency aggregate per-request lower-layer hops and
	// latency in HIERAS.
	LowerHops    stats.Online
	LowerLatency stats.Online

	// TopLink / LowerLink aggregate per-hop link latencies by layer
	// (paper §4.3: 79 ms vs 27.8 ms).
	TopLink   stats.Online
	LowerLink stats.Online

	// Distributions for Figures 4 and 5.
	HopsHistHieras *stats.Histogram // width 1
	HopsHistChord  *stats.Histogram
	HopsHistTop    *stats.Histogram // HIERAS hops taken in the top layer
	LatHistHieras  *stats.Histogram // width 20 ms
	LatHistChord   *stats.Histogram
}

// HopRatio returns mean HIERAS hops / mean Chord hops.
func (c *Comparison) HopRatio() float64 { return c.Hieras.Hops.Mean() / c.Chord.Hops.Mean() }

// LatencyRatio returns mean HIERAS latency / mean Chord latency.
func (c *Comparison) LatencyRatio() float64 {
	return c.Hieras.Latency.Mean() / c.Chord.Latency.Mean()
}

// LowerHopShare returns the fraction of HIERAS hops taken in lower rings.
func (c *Comparison) LowerHopShare() float64 {
	total := c.Hieras.Hops.Mean() * float64(c.Hieras.Hops.N())
	if total == 0 {
		return 0
	}
	return c.LowerHops.Mean() * float64(c.LowerHops.N()) / total
}

// LowerLatencyShare returns the fraction of HIERAS routing latency spent
// in lower rings.
func (c *Comparison) LowerLatencyShare() float64 {
	total := c.Hieras.Latency.Mean() * float64(c.Hieras.Latency.N())
	if total == 0 {
		return 0
	}
	return c.LowerLatency.Mean() * float64(c.LowerLatency.N()) / total
}

// RunComparison routes the scenario's request stream through both HIERAS
// and flat Chord over the same overlay, in parallel across Workers.
func RunComparison(s Scenario) (*Comparison, error) {
	s = s.withDefaults()
	o, err := BuildOverlay(s)
	if err != nil {
		return nil, err
	}
	return CompareOn(o, s)
}

// CompareOn runs the comparison workload over an existing overlay (so
// several experiments can share one expensive build).
func CompareOn(o *core.Overlay, s Scenario) (*Comparison, error) {
	s = s.withDefaults()
	gen, err := workload.NewUniform(s.Seed+1, o.N())
	if err != nil {
		return nil, err
	}
	reqs := gen.Batch(s.Requests)

	type acc struct {
		cmp Comparison
		err error
	}
	workers := s.Workers
	if workers > len(reqs) {
		workers = 1
	}
	accs := make([]acc, workers)
	var wg sync.WaitGroup
	chunk := (len(reqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			a := &accs[w]
			if a.err = initHists(&a.cmp); a.err != nil {
				return
			}
			for _, r := range reqs[lo:hi] {
				h := o.Route(r.Origin, r.Key)
				c := o.ChordRoute(r.Origin, r.Key)
				a.cmp.Hieras.Hops.Add(float64(h.NumHops()))
				a.cmp.Hieras.Latency.Add(h.Latency)
				a.cmp.Chord.Hops.Add(float64(c.NumHops()))
				a.cmp.Chord.Latency.Add(c.Latency)
				a.cmp.LowerHops.Add(float64(h.LowerHops))
				a.cmp.LowerLatency.Add(h.LowerLatency)
				for _, hop := range h.Hops {
					if hop.Layer == 1 {
						a.cmp.TopLink.Add(hop.Latency)
					} else {
						a.cmp.LowerLink.Add(hop.Latency)
					}
				}
				_ = a.cmp.HopsHistHieras.Add(float64(h.NumHops()))
				_ = a.cmp.HopsHistChord.Add(float64(c.NumHops()))
				_ = a.cmp.HopsHistTop.Add(float64(h.NumHops() - h.LowerHops))
				_ = a.cmp.LatHistHieras.Add(h.Latency)
				_ = a.cmp.LatHistChord.Add(c.Latency)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	out := &Comparison{Scenario: s}
	if err := initHists(out); err != nil {
		return nil, err
	}
	for i := range accs {
		a := &accs[i]
		if a.err != nil {
			return nil, a.err
		}
		if a.cmp.HopsHistHieras == nil {
			continue // unstarted slot
		}
		out.Hieras.Hops.Merge(&a.cmp.Hieras.Hops)
		out.Hieras.Latency.Merge(&a.cmp.Hieras.Latency)
		out.Chord.Hops.Merge(&a.cmp.Chord.Hops)
		out.Chord.Latency.Merge(&a.cmp.Chord.Latency)
		out.LowerHops.Merge(&a.cmp.LowerHops)
		out.LowerLatency.Merge(&a.cmp.LowerLatency)
		out.TopLink.Merge(&a.cmp.TopLink)
		out.LowerLink.Merge(&a.cmp.LowerLink)
		if err := out.HopsHistHieras.Merge(a.cmp.HopsHistHieras); err != nil {
			return nil, err
		}
		if err := out.HopsHistChord.Merge(a.cmp.HopsHistChord); err != nil {
			return nil, err
		}
		if err := out.HopsHistTop.Merge(a.cmp.HopsHistTop); err != nil {
			return nil, err
		}
		if err := out.LatHistHieras.Merge(a.cmp.LatHistHieras); err != nil {
			return nil, err
		}
		if err := out.LatHistChord.Merge(a.cmp.LatHistChord); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func initHists(c *Comparison) error {
	var err error
	if c.HopsHistHieras, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.HopsHistChord, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.HopsHistTop, err = stats.NewHistogram(1); err != nil {
		return err
	}
	if c.LatHistHieras, err = stats.NewHistogram(20); err != nil {
		return err
	}
	c.LatHistChord, err = stats.NewHistogram(20)
	return err
}
