package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestCompareAlgorithms(t *testing.T) {
	res, err := CompareAlgorithms(Scenario{Nodes: 250, Requests: 800, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	chord := res.Row("chord")
	pastryRow := res.Row("pastry")
	hieras := res.Row("hieras")
	hierasPNS := res.Row("hieras+pns")
	chordPNS := res.Row("chord+pns")
	if chord == nil || pastryRow == nil || hieras == nil || hierasPNS == nil || chordPNS == nil {
		t.Fatal("missing algorithm rows")
	}
	if res.Row("nope") != nil {
		t.Error("unknown row should be nil")
	}
	// Every latency-aware algorithm must beat plain Chord on latency.
	base := chord.Latency.Mean()
	for _, r := range []*AlgoRow{chordPNS, pastryRow, hieras, hierasPNS} {
		if r.Latency.Mean() >= base {
			t.Errorf("%s latency %.1f should beat chord %.1f", r.Name, r.Latency.Mean(), base)
		}
	}
	// Stacking PNS on HIERAS should not hurt HIERAS.
	if hierasPNS.Latency.Mean() > hieras.Latency.Mean()*1.05 {
		t.Errorf("hieras+pns %.1f worse than hieras %.1f", hierasPNS.Latency.Mean(), hieras.Latency.Mean())
	}
	// Pastry corrects a hex digit per hop: far fewer hops than Chord.
	if pastryRow.Hops.Mean() >= chord.Hops.Mean() {
		t.Errorf("pastry hops %.2f should undercut chord %.2f", pastryRow.Hops.Mean(), chord.Hops.Mean())
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "hieras+pns") {
		t.Error("rendered table incomplete")
	}
}

func TestCompareCAN(t *testing.T) {
	res, err := CompareCAN(Scenario{Nodes: 300, Requests: 800, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hier.Latency.Mean() >= res.Flat.Latency.Mean() {
		t.Errorf("hierarchical CAN %.1f should beat flat CAN %.1f",
			res.Hier.Latency.Mean(), res.Flat.Latency.Mean())
	}
	if res.LowerHops.Mean() <= 0 {
		t.Error("no lower-layer CAN hops recorded")
	}
	var buf bytes.Buffer
	res.Table().Render(&buf)
	if !strings.Contains(buf.String(), "hieras-can") {
		t.Error("rendered table incomplete")
	}
}
