package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// OverheadRow quantifies HIERAS's extra state and protocol cost at one
// hierarchy depth.
type OverheadRow struct {
	Depth int
	State core.StateStats
	// JoinMsgs is the mean protocol messages per node join, measured on a
	// protocol overlay.
	JoinMsgs float64
	// StabilizeMsgs is the messages of one full stabilization round over
	// every ring, divided by the node count.
	StabilizeMsgsPerNode float64
}

// OverheadResult is the quantitative overhead analysis (paper §3.4 and the
// future-work item of §6): per-node routing state and join/maintenance
// message costs for Chord (depth 1) and HIERAS (depths 2+).
type OverheadResult struct {
	Nodes int
	Rows  []OverheadRow
}

// Overhead measures state and protocol costs across depths. The protocol
// measurements cap the population at 150 nodes to keep the message-level
// simulation fast; state statistics use the full scenario size.
func Overhead(base Scenario, depths []int) (*OverheadResult, error) {
	base = base.withDefaults()
	res := &OverheadResult{Nodes: base.Nodes}
	for _, depth := range depths {
		s := base
		s.Depth = depth
		o, err := BuildOverlay(s)
		if err != nil {
			return nil, fmt.Errorf("depth %d: %w", depth, err)
		}
		row := OverheadRow{Depth: depth, State: o.StateStats()}

		// Protocol costs on a smaller population.
		protoNodes := base.Nodes
		if protoNodes > 150 {
			protoNodes = 150
		}
		net := o.Network()
		// Reuse the big network's first protoNodes hosts: build a protocol
		// overlay directly on the same underlay.
		rng := rand.New(rand.NewSource(s.Seed + 17))
		po, err := core.NewProtoOverlay(net, core.Config{
			Depth:     depth,
			Landmarks: s.Landmarks,
		}, rng)
		if err != nil {
			return nil, err
		}
		var joins stats.Online
		var first *core.ProtoNode
		for h := 0; h < protoNodes; h++ {
			var boot *core.ProtoNode
			if first != nil {
				boot = first
			}
			n, cost, err := po.Join(h, boot, rng)
			if err != nil {
				return nil, fmt.Errorf("depth %d join %d: %w", depth, h, err)
			}
			if first == nil {
				first = n
			} else {
				joins.Add(float64(cost))
			}
		}
		row.JoinMsgs = joins.Mean()
		before := po.Msgs()
		po.StabilizeAll()
		po.RepairRingTables()
		row.StabilizeMsgsPerNode = float64(po.Msgs()-before) / float64(protoNodes)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the overhead analysis.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Overhead analysis (%d nodes; depth 1 = plain Chord)", r.Nodes),
		Header: []string{"depth", "finger_slots", "distinct_fingers", "succ_entries",
			"rings", "est_bytes/node", "join_msgs", "stabilize_msgs/node"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprint(row.Depth),
			fmt.Sprint(row.State.FingerEntriesPerNode),
			f1(row.State.DistinctFingersPerNode),
			fmt.Sprint(row.State.SuccessorListEntriesPerNode),
			fmt.Sprint(row.State.Rings),
			f1(row.State.EstBytesPerNode),
			f1(row.JoinMsgs),
			f2(row.StabilizeMsgsPerNode))
	}
	return t
}
