package hieras

import (
	"fmt"
	"testing"
)

func TestCachedSystem(t *testing.T) {
	sys := newSmall(t)
	cs, err := sys.Cached(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Cached(0, false); err == nil {
		t.Error("zero capacity accepted")
	}
	r1, hit1, err := cs.Lookup(3, "popular")
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first lookup cannot hit")
	}
	r2, hit2, err := cs.Lookup(3, "popular")
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || r2.Dest != r1.Dest || r2.Hops > 1 {
		t.Errorf("second lookup should be a 1-hop hit: %+v hit=%v", r2, hit2)
	}
	if cs.HitRate() != 0.5 {
		t.Errorf("hit rate %v", cs.HitRate())
	}
	if _, _, err := cs.Lookup(-1, "x"); err == nil {
		t.Error("bad origin accepted")
	}
}

func TestDegradedSystem(t *testing.T) {
	sys := newSmall(t)
	if _, err := sys.FailPeers(1.5, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	deg, err := sys.FailPeers(0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	deadCount := 0
	for i := 0; i < sys.N(); i++ {
		if !deg.Alive(i) {
			deadCount++
		}
	}
	if deadCount != sys.N()*15/100 {
		t.Errorf("dead = %d, want %d", deadCount, sys.N()*15/100)
	}
	delivered := 0
	for i := 0; i < 60; i++ {
		origin := i % sys.N()
		if !deg.Alive(origin) {
			continue
		}
		key := fmt.Sprintf("k-%d", i)
		r, err := deg.Lookup(origin, key)
		if err != nil {
			continue
		}
		if !deg.Alive(r.Dest) {
			t.Fatal("delivered to a dead peer")
		}
		delivered++
		if c, err := deg.ChordLookup(origin, key); err == nil && !deg.Alive(c.Dest) {
			t.Fatal("chord delivered to a dead peer")
		}
	}
	if delivered < 30 {
		t.Errorf("only %d/60 lookups survived 15%% failures", delivered)
	}
}
