package hieras

import (
	"errors"
	"fmt"
	"testing"
)

func TestCachedSystem(t *testing.T) {
	sys := newSmall(t)
	cs, err := sys.Cached(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, zeroErr := sys.Cached(0, false); zeroErr == nil {
		t.Error("zero capacity accepted")
	}
	r1, err := cs.Lookup(3, "popular")
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first lookup cannot hit")
	}
	r2, err := cs.Lookup(3, "popular")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || r2.Dest != r1.Dest || r2.Hops > 1 {
		t.Errorf("second lookup should be a 1-hop hit: %+v", r2)
	}
	if cs.HitRate() != 0.5 {
		t.Errorf("hit rate %v", cs.HitRate())
	}
	if _, err := cs.Lookup(-1, "x"); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("bad origin: err = %v, want ErrOriginOutOfRange", err)
	}
	if c, err := cs.ChordLookup(3, "popular"); err != nil || c.CacheHit {
		t.Errorf("chord baseline must bypass the cache: %+v err=%v", c, err)
	}
}

// TestCachedMissKeepsLowerLayerAccounting guards the facade against the
// old 3-value Lookup signature silently dropping LowerHops/LowerLatency.
func TestCachedMissKeepsLowerLayerAccounting(t *testing.T) {
	sys := newSmall(t)
	cs, err := sys.Cached(32, false)
	if err != nil {
		t.Fatal(err)
	}
	lowerHops, lowerLat := 0, 0.0
	for i := 0; i < 80; i++ {
		r, err := cs.Lookup(i%sys.N(), fmt.Sprintf("cold-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if r.CacheHit {
			continue
		}
		lowerHops += r.LowerHops
		lowerLat += r.LowerLatency
	}
	if lowerHops == 0 || lowerLat == 0 {
		t.Errorf("cached misses on a depth-%d system must report lower-layer work: %d hops, %.1f ms",
			sys.Depth(), lowerHops, lowerLat)
	}
}

func TestOneHopSystem(t *testing.T) {
	sys := newSmall(t)
	oh := sys.OneHop()
	// Stable cluster: the table names every owner correctly, so every
	// lookup is a verified single hop.
	var direct Route
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k-%d", i)
		r, err := oh.Lookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		full, err := sys.Lookup(i%sys.N(), key)
		if err != nil {
			t.Fatal(err)
		}
		if !r.CacheHit || r.Hops > 1 || r.Dest != full.Dest {
			t.Fatalf("stable-cluster lookup %d not a verified 1-hop: %+v (full dest %d)", i, r, full.Dest)
		}
		if i == 0 {
			direct = r
		}
	}
	if oh.HitRate() != 1 {
		t.Errorf("stable-cluster hit rate = %v, want 1", oh.HitRate())
	}
	// Tombstone the owner of k-0: its keys now fail verification and fall
	// back — correct owner, classic cost plus the wasted probe, no hit.
	if err := oh.Evict(direct.Dest); err != nil {
		t.Fatal(err)
	}
	r, err := oh.Lookup(0, "k-0")
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHit {
		t.Error("stale table entry still reported as a hit")
	}
	if r.Dest != direct.Dest {
		t.Errorf("fallback dest = %d, want true owner %d", r.Dest, direct.Dest)
	}
	// Restore ends the staleness window.
	if restoreErr := oh.Restore(direct.Dest); restoreErr != nil {
		t.Fatal(restoreErr)
	}
	r2, err := oh.Lookup(0, "k-0")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Errorf("restored peer not answered one-hop: %+v", r2)
	}
	if _, err := oh.Lookup(-1, "x"); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("bad origin: err = %v, want ErrOriginOutOfRange", err)
	}
	if err := oh.Evict(sys.N()); !errors.Is(err, ErrOriginOutOfRange) {
		t.Errorf("bad evict peer: err = %v, want ErrOriginOutOfRange", err)
	}
	if c, err := oh.ChordLookup(3, "k-1"); err != nil || c.CacheHit {
		t.Errorf("chord baseline must bypass the table: %+v err=%v", c, err)
	}
}

func TestDegradedSystem(t *testing.T) {
	sys := newSmall(t)
	if _, err := sys.FailPeers(1.5, 1); !errors.Is(err, ErrBadFraction) {
		t.Errorf("fraction > 1: err = %v, want ErrBadFraction", err)
	}
	if _, err := sys.FailPeers(-0.1, 1); !errors.Is(err, ErrBadFraction) {
		t.Errorf("negative fraction: err = %v, want ErrBadFraction", err)
	}
	deg, err := sys.FailPeers(0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	deadCount := 0
	for i := 0; i < sys.N(); i++ {
		if !deg.Alive(i) {
			deadCount++
		}
	}
	if deadCount != sys.N()*15/100 {
		t.Errorf("dead = %d, want %d", deadCount, sys.N()*15/100)
	}
	delivered := 0
	for i := 0; i < 60; i++ {
		origin := i % sys.N()
		if !deg.Alive(origin) {
			continue
		}
		key := fmt.Sprintf("k-%d", i)
		r, err := deg.Lookup(origin, key)
		if err != nil {
			continue
		}
		if !deg.Alive(r.Dest) {
			t.Fatal("delivered to a dead peer")
		}
		delivered++
		if c, err := deg.ChordLookup(origin, key); err == nil && !deg.Alive(c.Dest) {
			t.Fatal("chord delivered to a dead peer")
		}
	}
	if delivered < 30 {
		t.Errorf("only %d/60 lookups survived 15%% failures", delivered)
	}
}
