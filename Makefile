# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# lint is the blocking contract gate: stock vet plus the repo's own
# analyzer suite (determinism, lock-across-RPC, retry idempotency,
# metric hygiene, structural error matching, goroutine lifecycle,
# context flow, lock ordering, channel ownership). Suppressions require
# //lint:allow <analyzer> <reason>; a missing reason is itself a
# finding, and a suppression whose analyzer no longer fires is rot the
# stale-allows pass rejects.
lint: vet
	$(GO) run ./cmd/hieras-lint ./...
	$(GO) run ./cmd/hieras-lint -stale-allows ./...

vet:
	$(GO) vet ./...

check: build lint test

clean:
	$(GO) clean ./...
